#ifndef SIMDB_HYRACKS_EXPR_H_
#define SIMDB_HYRACKS_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/result.h"
#include "hyracks/functions.h"
#include "hyracks/tuple.h"

namespace simdb::hyracks {

/// A compiled row-level expression. Column references are positional; the
/// job generator resolves logical variable names to positions when building
/// operators.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual Result<adm::Value> Eval(const Tuple& row) const = 0;
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

class ColumnExpr : public Expr {
 public:
  ColumnExpr(int index, std::string name)
      : index_(index), name_(std::move(name)) {}

  Result<adm::Value> Eval(const Tuple& row) const override {
    if (index_ < 0 || static_cast<size_t>(index_) >= row.size()) {
      return Status::Internal("column index " + std::to_string(index_) +
                              " out of range for tuple of " +
                              std::to_string(row.size()));
    }
    return row[static_cast<size_t>(index_)];
  }

  std::string ToString() const override {
    return "$" + name_ + "@" + std::to_string(index_);
  }

  int index() const { return index_; }

 private:
  int index_;
  std::string name_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(adm::Value value) : value_(std::move(value)) {}

  Result<adm::Value> Eval(const Tuple&) const override { return value_; }
  std::string ToString() const override { return value_.ToJson(); }
  const adm::Value& value() const { return value_; }

 private:
  adm::Value value_;
};

class FieldAccessExpr : public Expr {
 public:
  FieldAccessExpr(ExprPtr base, std::string field)
      : base_(std::move(base)), field_(std::move(field)) {}

  Result<adm::Value> Eval(const Tuple& row) const override {
    SIMDB_ASSIGN_OR_RETURN(adm::Value base, base_->Eval(row));
    return base.GetField(field_);
  }

  std::string ToString() const override {
    return base_->ToString() + "." + field_;
  }

  const ExprPtr& base() const { return base_; }
  const std::string& field() const { return field_; }

 private:
  ExprPtr base_;
  std::string field_;
};

class CallExpr : public Expr {
 public:
  /// Resolves `name` against the global registry and validates arity.
  static Result<ExprPtr> Make(std::string name, std::vector<ExprPtr> args);

  Result<adm::Value> Eval(const Tuple& row) const override {
    std::vector<adm::Value> values;
    values.reserve(args_.size());
    for (const ExprPtr& arg : args_) {
      SIMDB_ASSIGN_OR_RETURN(adm::Value v, arg->Eval(row));
      values.push_back(std::move(v));
    }
    return def_->fn(values);
  }

  std::string ToString() const override;

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

 private:
  CallExpr(std::string name, std::vector<ExprPtr> args, const FunctionDef* def)
      : name_(std::move(name)), args_(std::move(args)), def_(def) {}

  std::string name_;
  std::vector<ExprPtr> args_;
  const FunctionDef* def_;
};

/// Constructs a record value {name1: e1, ...}.
class RecordConstructorExpr : public Expr {
 public:
  RecordConstructorExpr(std::vector<std::string> names,
                        std::vector<ExprPtr> exprs)
      : names_(std::move(names)), exprs_(std::move(exprs)) {}

  Result<adm::Value> Eval(const Tuple& row) const override {
    adm::Value::Object fields;
    fields.reserve(names_.size());
    for (size_t i = 0; i < names_.size(); ++i) {
      SIMDB_ASSIGN_OR_RETURN(adm::Value v, exprs_[i]->Eval(row));
      fields.emplace_back(names_[i], std::move(v));
    }
    return adm::Value::MakeObject(std::move(fields));
  }

  std::string ToString() const override;

  const std::vector<std::string>& names() const { return names_; }
  const std::vector<ExprPtr>& exprs() const { return exprs_; }

 private:
  std::vector<std::string> names_;
  std::vector<ExprPtr> exprs_;
};

/// Constructs a list value [e1, e2, ...].
class ListConstructorExpr : public Expr {
 public:
  explicit ListConstructorExpr(std::vector<ExprPtr> exprs)
      : exprs_(std::move(exprs)) {}

  Result<adm::Value> Eval(const Tuple& row) const override {
    adm::Value::Array items;
    items.reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) {
      SIMDB_ASSIGN_OR_RETURN(adm::Value v, e->Eval(row));
      items.push_back(std::move(v));
    }
    return adm::Value::MakeArray(std::move(items));
  }

  std::string ToString() const override;

  const std::vector<ExprPtr>& exprs() const { return exprs_; }

 private:
  std::vector<ExprPtr> exprs_;
};

/// Convenience helpers used throughout plan generation.
ExprPtr Col(int index, std::string name);
ExprPtr Lit(adm::Value v);
Result<ExprPtr> Call(std::string name, std::vector<ExprPtr> args);

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_EXPR_H_
