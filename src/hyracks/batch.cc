#include "hyracks/batch.h"

#include <algorithm>

namespace simdb::hyracks {

namespace {

bool AllStrings(const adm::Value& v) {
  for (const adm::Value& item : v.AsList()) {
    if (!item.is_string()) return false;
  }
  return true;
}

bool AllInt64(const adm::Value& v) {
  for (const adm::Value& item : v.AsList()) {
    if (!item.is_int64()) return false;
  }
  return true;
}

}  // namespace

std::optional<SimBatchCall> MatchSimCheckCall(const ExprPtr& expr) {
  const auto* call = dynamic_cast<const CallExpr*>(expr.get());
  if (call == nullptr || call->args().size() != 3) return std::nullopt;
  SimBatchCall out;
  if (call->name() == "similarity-jaccard-check") {
    out.kind = SimBatchCall::Kind::kJaccardCheck;
  } else if (call->name() == "edit-distance-check") {
    out.kind = SimBatchCall::Kind::kEditDistanceCheck;
  } else {
    return std::nullopt;
  }
  // Only a numeric literal threshold: its value feeds the kernel directly
  // and can never raise the tuple path's "threshold must be numeric" error.
  const auto* lit = dynamic_cast<const LiteralExpr*>(call->args()[2].get());
  if (lit == nullptr || !lit->value().is_numeric()) return std::nullopt;
  out.arg_a = call->args()[0];
  out.arg_b = call->args()[1];
  out.threshold = lit->value().AsNumber();
  return out;
}

std::optional<SimBatchCall> MatchSimEvalCall(const ExprPtr& expr) {
  const auto* call = dynamic_cast<const CallExpr*>(expr.get());
  if (call == nullptr || call->name() != "similarity-jaccard" ||
      call->args().size() != 2) {
    return std::nullopt;
  }
  SimBatchCall out;
  out.kind = SimBatchCall::Kind::kJaccardEval;
  out.arg_a = call->args()[0];
  out.arg_b = call->args()[1];
  return out;
}

bool ColumnRange(const Expr* expr, int* min_col, int* max_col) {
  if (const auto* col = dynamic_cast<const ColumnExpr*>(expr)) {
    *min_col = std::min(*min_col, col->index());
    *max_col = std::max(*max_col, col->index());
    return true;
  }
  if (dynamic_cast<const LiteralExpr*>(expr) != nullptr) return true;
  if (const auto* fa = dynamic_cast<const FieldAccessExpr*>(expr)) {
    return ColumnRange(fa->base().get(), min_col, max_col);
  }
  if (const auto* call = dynamic_cast<const CallExpr*>(expr)) {
    for (const ExprPtr& arg : call->args()) {
      if (!ColumnRange(arg.get(), min_col, max_col)) return false;
    }
    return true;
  }
  if (const auto* rec = dynamic_cast<const RecordConstructorExpr*>(expr)) {
    for (const ExprPtr& e : rec->exprs()) {
      if (!ColumnRange(e.get(), min_col, max_col)) return false;
    }
    return true;
  }
  if (const auto* lst = dynamic_cast<const ListConstructorExpr*>(expr)) {
    for (const ExprPtr& e : lst->exprs()) {
      if (!ColumnRange(e.get(), min_col, max_col)) return false;
    }
    return true;
  }
  return false;
}

uint32_t TokenIdEncoder::IdFor(Occ& o) {
  if (o.epoch != epoch_) {
    o.epoch = epoch_;
    o.occ = 0;
  } else {
    ++o.occ;
  }
  if (o.occ == 0) return o.first_id;
  while (o.more.size() < o.occ) o.more.push_back(next_id_++);
  return o.more[o.occ - 1];
}

void TokenIdEncoder::EncodeStrings(const adm::Value& v,
                                   std::vector<uint32_t>* out) {
  ++epoch_;
  out->clear();
  for (const adm::Value& item : v.AsList()) {
    std::string_view sv = item.AsString();
    auto it = str_ids_.find(sv);
    if (it == str_ids_.end()) {
      it = str_ids_.try_emplace(std::string(sv), Occ{next_id_++, {}, 0, 0})
               .first;
    }
    out->push_back(IdFor(it->second));
  }
  std::sort(out->begin(), out->end());
}

void TokenIdEncoder::EncodeInts(const adm::Value& v,
                                std::vector<uint32_t>* out) {
  ++epoch_;
  out->clear();
  for (const adm::Value& item : v.AsList()) {
    auto it = int_ids_.find(item.AsInt64());
    if (it == int_ids_.end()) {
      it = int_ids_.try_emplace(item.AsInt64(), Occ{next_id_++, {}, 0, 0})
               .first;
    }
    out->push_back(IdFor(it->second));
  }
  std::sort(out->begin(), out->end());
}

bool TokenIdEncoder::EncodePair(const adm::Value& a, const adm::Value& b,
                                std::vector<uint32_t>* out_a,
                                std::vector<uint32_t>* out_b) {
  if (!a.is_list() || !b.is_list()) return false;
  // Same dispatch order as CheckJaccard: all-strings wins over all-int64
  // (both are vacuously true on empty lists).
  if (AllStrings(a) && AllStrings(b)) {
    EncodeStrings(a, out_a);
    EncodeStrings(b, out_b);
    return true;
  }
  if (AllInt64(a) && AllInt64(b)) {
    EncodeInts(a, out_a);
    EncodeInts(b, out_b);
    return true;
  }
  return false;
}

bool TokenIdEncoder::EncodeValue(const adm::Value& v,
                                 std::vector<uint32_t>* out) {
  if (!v.is_list()) return false;
  if (AllStrings(v)) {
    EncodeStrings(v, out);
    return true;
  }
  if (AllInt64(v)) {
    EncodeInts(v, out);
    return true;
  }
  return false;
}

}  // namespace simdb::hyracks
