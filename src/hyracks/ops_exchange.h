#ifndef SIMDB_HYRACKS_OPS_EXCHANGE_H_
#define SIMDB_HYRACKS_OPS_EXCHANGE_H_

#include <string>
#include <vector>

#include "hyracks/exec.h"
#include "hyracks/ops_basic.h"

namespace simdb::hyracks {

/// Repartitions rows by the hash of the listed key columns. Tuples with
/// equal keys land on the same partition ("Hash repartition" in the paper's
/// plan diagrams). Traffic crossing node boundaries is accounted.
class HashExchangeOp : public Operator {
 public:
  explicit HashExchangeOp(std::vector<int> key_columns)
      : key_columns_(std::move(key_columns)) {}
  std::string name() const override { return "HASH-EXCHANGE"; }
  Result<PartitionedRows> Execute(
      ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
      OpStats* stats) override;

 private:
  std::vector<int> key_columns_;
};

/// Replicates every row to every partition ("Broadcast to all nodes").
class BroadcastExchangeOp : public Operator {
 public:
  std::string name() const override { return "BROADCAST-EXCHANGE"; }
  Result<PartitionedRows> Execute(
      ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
      OpStats* stats) override;
};

/// Collects all rows into partition 0 (the coordinator).
class GatherOp : public Operator {
 public:
  std::string name() const override { return "GATHER"; }
  Result<PartitionedRows> Execute(
      ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
      OpStats* stats) override;
};

/// Collects into partition 0 while merging partitions that are already
/// sorted on `keys` ("Hash repartition merge" / sort-merge gather).
class MergeGatherOp : public Operator {
 public:
  explicit MergeGatherOp(std::vector<SortKey> keys) : keys_(std::move(keys)) {}
  std::string name() const override { return "MERGE-GATHER"; }
  Result<PartitionedRows> Execute(
      ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
      OpStats* stats) override;

 private:
  std::vector<SortKey> keys_;
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_OPS_EXCHANGE_H_
