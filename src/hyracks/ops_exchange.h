#ifndef SIMDB_HYRACKS_OPS_EXCHANGE_H_
#define SIMDB_HYRACKS_OPS_EXCHANGE_H_

#include <string>
#include <vector>

#include "hyracks/exec.h"
#include "hyracks/ops_basic.h"

namespace simdb::hyracks {

/// A pipeline barrier that reroutes tuples between partitions. Execution is
/// split into two phases so the expensive part parallelizes:
///
///   1. Route(): one pass over the materialized input computing per-row
///      destinations (only ops that need them, e.g. hash). Runs once, before
///      any destination build, so builds never race on routing decisions.
///   2. BuildDestination(dst): produces destination partition `dst`'s rows
///      and accounts its share of the traffic. The executor runs all
///      destinations in parallel and merges the per-destination counters in
///      destination order, so OpStats are identical under any pool size.
///
/// When the executor exclusively owns the input (this exchange is its last
/// consumer) it passes a mutable `steal` view: builds may then move tuples
/// out of it instead of copying. Destinations own disjoint rows (a tuple is
/// moved only by the destination it routes to), so concurrent moves are safe.
class ExchangeOperator : public Operator {
 public:
  struct Routing {
    /// destinations[src][i] = destination partition of row i of source
    /// partition src. Empty when routing is implicit (broadcast, gather).
    std::vector<std::vector<int>> destinations;
  };

  /// Default: no routing table (implicit routing).
  virtual Result<Routing> Route(ExecContext& ctx, const PartitionedRows& in);

  /// Builds destination partition `dst`. Routing decisions must come from
  /// `in`/`routing` (shared read-only across concurrent builds); tuples may
  /// be moved out of `steal` when non-null. Traffic goes into `stats`
  /// (a destination-private sink, merged by the caller).
  virtual Result<Rows> BuildDestination(ExecContext& ctx, int dst,
                                        const PartitionedRows& in,
                                        const Routing& routing,
                                        PartitionedRows* steal,
                                        OpStats* stats) = 0;

  /// Adapter: RunExchange without tuple stealing.
  Result<PartitionedRows> Execute(
      ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
      OpStats* stats) final;
};

/// Builds destination `dst` and, when the context carries a transport whose
/// ShouldShip accepts the destination (judged on its row count and accounted
/// remote bytes), round-trips the built rows through Transport::Ship. This is
/// the single seam both executors go through, so all backends see identical
/// shipping decisions; it runs inside the build task's stopwatch, so shipped
/// seconds land in the exchange's partition time (also recorded separately in
/// `stats->transport_seconds`). A tripped cancellation token skips the ship —
/// the round trip is a value identity, so the answer is unchanged either way.
Result<Rows> BuildAndShipDestination(ExecContext& ctx, ExchangeOperator& op,
                                     int dst, const PartitionedRows& in,
                                     const ExchangeOperator::Routing& routing,
                                     PartitionedRows* steal, OpStats* stats);

/// Runs an exchange: Route once, then all destination builds in parallel on
/// the context's pool, merging per-destination traffic counters and
/// partition build times deterministically. `steal` may be null.
Result<PartitionedRows> RunExchange(
    ExecContext& ctx, ExchangeOperator& op,
    const std::vector<const PartitionedRows*>& inputs, PartitionedRows* steal,
    OpStats* stats);

/// Repartitions rows by the hash of the listed key columns. Tuples with
/// equal keys land on the same partition ("Hash repartition" in the paper's
/// plan diagrams). Traffic crossing node boundaries is accounted.
class HashExchangeOp : public ExchangeOperator {
 public:
  explicit HashExchangeOp(std::vector<int> key_columns)
      : key_columns_(std::move(key_columns)) {}
  std::string name() const override { return "HASH-EXCHANGE"; }
  Result<Routing> Route(ExecContext& ctx,
                        const PartitionedRows& in) override;
  Result<Rows> BuildDestination(ExecContext& ctx, int dst,
                                const PartitionedRows& in,
                                const Routing& routing, PartitionedRows* steal,
                                OpStats* stats) override;
  const std::vector<int>& key_columns() const { return key_columns_; }

 private:
  std::vector<int> key_columns_;
};

/// Replicates every row to every partition ("Broadcast to all nodes").
/// Replication inherently copies; the per-destination builds parallelize it.
class BroadcastExchangeOp : public ExchangeOperator {
 public:
  std::string name() const override { return "BROADCAST-EXCHANGE"; }
  Result<Rows> BuildDestination(ExecContext& ctx, int dst,
                                const PartitionedRows& in,
                                const Routing& routing, PartitionedRows* steal,
                                OpStats* stats) override;
};

/// Collects all rows into partition 0 (the coordinator).
class GatherOp : public ExchangeOperator {
 public:
  std::string name() const override { return "GATHER"; }
  Result<Rows> BuildDestination(ExecContext& ctx, int dst,
                                const PartitionedRows& in,
                                const Routing& routing, PartitionedRows* steal,
                                OpStats* stats) override;
};

/// Collects into partition 0 while merging partitions that are already
/// sorted on `keys` ("Hash repartition merge" / sort-merge gather). The
/// merge is a binary heap with a deterministic partition-index tiebreak.
class MergeGatherOp : public ExchangeOperator {
 public:
  explicit MergeGatherOp(std::vector<SortKey> keys) : keys_(std::move(keys)) {}
  std::string name() const override { return "MERGE-GATHER"; }
  Result<Rows> BuildDestination(ExecContext& ctx, int dst,
                                const PartitionedRows& in,
                                const Routing& routing, PartitionedRows* steal,
                                OpStats* stats) override;
  const std::vector<SortKey>& keys() const { return keys_; }

 private:
  std::vector<SortKey> keys_;
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_OPS_EXCHANGE_H_
