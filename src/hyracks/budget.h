#ifndef SIMDB_HYRACKS_BUDGET_H_
#define SIMDB_HYRACKS_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace simdb::hyracks {

/// Per-query resource quotas, charged cooperatively by the executors:
///   - memory: approximate bytes of live intermediate partitions (TupleBytes
///     of everything the scheduler currently holds). Charged when a task's
///     output is stored, released when the last consumer frees the
///     partition; the executor releases every remaining charge when the run
///     ends, so `memory_in_use` returns to zero whether the query succeeded,
///     failed, or was cancelled.
///   - tasks: number of scheduler tasks started. A runaway query (e.g. an
///     accidental cross product expanded over many partitions) trips the
///     task quota even when each individual task is small.
///
/// A limit of 0 means unlimited. Thread-safe; charging is lock-free.
/// Exceeding a quota returns kResourceExhausted, which the serving layer
/// surfaces to the client distinctly from cancellation and overload.
class ResourceBudget {
 public:
  ResourceBudget() = default;
  ResourceBudget(int64_t max_memory_bytes, int64_t max_tasks)
      : max_memory_bytes_(max_memory_bytes), max_tasks_(max_tasks) {}

  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  int64_t max_memory_bytes() const { return max_memory_bytes_; }
  int64_t max_tasks() const { return max_tasks_; }

  /// Claims `bytes` of the memory quota; on refusal nothing is charged.
  Status ChargeMemory(int64_t bytes) {
    if (bytes <= 0) return Status::OK();
    int64_t now = memory_in_use_.fetch_add(bytes, std::memory_order_relaxed) +
                  bytes;
    if (max_memory_bytes_ > 0 && now > max_memory_bytes_) {
      memory_in_use_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "memory quota exceeded: " + std::to_string(now) + " bytes needed, " +
          std::to_string(max_memory_bytes_) + " allowed");
    }
    UpdatePeak(now);  // peak tracks accepted charges only
    return Status::OK();
  }

  void ReleaseMemory(int64_t bytes) {
    if (bytes > 0) memory_in_use_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Counts one started task against the task quota.
  Status ChargeTask() {
    int64_t now = tasks_started_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (max_tasks_ > 0 && now > max_tasks_) {
      return Status::ResourceExhausted(
          "task quota exceeded: " + std::to_string(max_tasks_) +
          " tasks allowed");
    }
    return Status::OK();
  }

  int64_t memory_in_use() const {
    return memory_in_use_.load(std::memory_order_relaxed);
  }
  int64_t peak_memory_bytes() const {
    return peak_memory_bytes_.load(std::memory_order_relaxed);
  }
  int64_t tasks_started() const {
    return tasks_started_.load(std::memory_order_relaxed);
  }

 private:
  void UpdatePeak(int64_t now) {
    int64_t peak = peak_memory_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_memory_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  int64_t max_memory_bytes_ = 0;  // 0 = unlimited
  int64_t max_tasks_ = 0;         // 0 = unlimited
  std::atomic<int64_t> memory_in_use_{0};
  std::atomic<int64_t> peak_memory_bytes_{0};
  std::atomic<int64_t> tasks_started_{0};
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_BUDGET_H_
