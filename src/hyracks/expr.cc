#include "hyracks/expr.h"

namespace simdb::hyracks {

Result<ExprPtr> CallExpr::Make(std::string name, std::vector<ExprPtr> args) {
  const FunctionDef* def = FunctionRegistry::Global().Find(name);
  if (def == nullptr) {
    return Status::PlanError("unknown function: " + name);
  }
  int n = static_cast<int>(args.size());
  if (n < def->min_args || n > def->max_args) {
    return Status::PlanError("function " + name + " called with " +
                             std::to_string(n) + " arguments");
  }
  return ExprPtr(new CallExpr(std::move(name), std::move(args), def));
}

std::string CallExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

std::string RecordConstructorExpr::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[i] + ": " + exprs_[i]->ToString();
  }
  out += "}";
  return out;
}

std::string ListConstructorExpr::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  out += "]";
  return out;
}

ExprPtr Col(int index, std::string name) {
  return std::make_shared<ColumnExpr>(index, std::move(name));
}

ExprPtr Lit(adm::Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }

Result<ExprPtr> Call(std::string name, std::vector<ExprPtr> args) {
  return CallExpr::Make(std::move(name), std::move(args));
}

}  // namespace simdb::hyracks
