#include "hyracks/exec.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "hyracks/ops_exchange.h"
#include "hyracks/scheduler.h"
#include "observability/trace.h"
#include "transport/transport.h"

namespace simdb::hyracks {

void MergeCounterSink(OpStats& stats, const OpCounterSink& sink) {
  for (const auto& [name, delta] : sink.entries) {
    auto pos = std::lower_bound(
        stats.counters.begin(), stats.counters.end(), name,
        [](const std::pair<std::string, uint64_t>& e, const char* n) {
          return e.first < n;
        });
    if (pos != stats.counters.end() && pos->first == name) {
      pos->second += delta;
    } else {
      stats.counters.emplace(pos, name, delta);
    }
  }
}

std::vector<int> ComputeStages(const Job& job) {
  const auto& nodes = job.nodes();
  std::vector<int> stages(nodes.size(), 0);
  for (size_t i = 0; i < nodes.size(); ++i) {
    int s = 0;
    for (int in : nodes[i].inputs) {
      int bump = nodes[static_cast<size_t>(in)].op->partition_local() ? 0 : 1;
      s = std::max(s, stages[static_cast<size_t>(in)] + bump);
    }
    stages[i] = s;
  }
  return stages;
}

Status RunPerPartition(ExecContext& ctx, int num_partitions, OpStats* stats,
                       const std::function<Status(int)>& fn) {
  if (num_partitions <= 0) return Status::OK();
  if (stats != nullptr) {
    stats->partition_seconds.assign(static_cast<size_t>(num_partitions), 0.0);
  }
  // Every partition runs to completion and records its outcome in its own
  // slot — no shared mutable error state — so the error returned below does
  // not depend on thread scheduling: the lowest failing partition index wins,
  // with or without a stats sink, under any pool size.
  std::vector<Status> statuses(static_cast<size_t>(num_partitions));
  if (num_partitions == 1 || ctx.pool == nullptr) {
    for (int p = 0; p < num_partitions; ++p) {
      Stopwatch sw;
      statuses[static_cast<size_t>(p)] = fn(p);
      if (stats != nullptr) {
        stats->partition_seconds[static_cast<size_t>(p)] = sw.ElapsedSeconds();
      }
    }
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<size_t>(num_partitions));
    for (int p = 0; p < num_partitions; ++p) {
      tasks.push_back([&, p] {
        Stopwatch sw;
        statuses[static_cast<size_t>(p)] = fn(p);
        if (stats != nullptr) {
          stats->partition_seconds[static_cast<size_t>(p)] = sw.ElapsedSeconds();
        }
      });
    }
    ctx.pool->RunAll(std::move(tasks));
  }
  for (int p = 0; p < num_partitions; ++p) {
    const Status& s = statuses[static_cast<size_t>(p)];
    if (!s.ok()) {
      return Status(s.code(),
                    "partition " + std::to_string(p) + ": " + s.message());
    }
  }
  return Status::OK();
}

Status PartitionOperator::ValidateInputArity(size_t provided) const {
  int expected = num_inputs();
  if (expected < 0) {
    if (provided == 0) {
      return Status::Internal(name() + " expects at least one input");
    }
    return Status::OK();
  }
  if (provided != static_cast<size_t>(expected)) {
    return Status::Internal(name() + " expects " + std::to_string(expected) +
                            " input(s), got " + std::to_string(provided));
  }
  return Status::OK();
}

Result<PartitionedRows> PartitionOperator::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  SIMDB_RETURN_IF_ERROR(ValidateInputArity(inputs.size()));
  SIMDB_RETURN_IF_ERROR(Prepare(ctx));
  size_t parts = inputs.empty()
                     ? static_cast<size_t>(ctx.topology.total_partitions())
                     : inputs[0]->size();
  for (const PartitionedRows* in : inputs) {
    if (in->size() != parts) {
      return Status::Internal(name() + " partition mismatch");
    }
  }
  PartitionedRows out(parts);
  // Profiling gives every partition task a private counter sink (merged in
  // partition order below) and records a span; the off path is untouched.
  const bool profiling = ctx.trace != nullptr;
  std::vector<OpCounterSink> sinks;
  if (profiling) sinks.resize(parts);
  SIMDB_RETURN_IF_ERROR(RunPerPartition(
      ctx, static_cast<int>(parts), stats, [&](int p) -> Status {
        std::vector<const Rows*> slice;
        slice.reserve(inputs.size());
        for (const PartitionedRows* in : inputs) {
          slice.push_back(&(*in)[static_cast<size_t>(p)]);
        }
        if (!profiling) {
          SIMDB_ASSIGN_OR_RETURN(out[static_cast<size_t>(p)],
                                 ExecutePartition(ctx, p, slice));
          return Status::OK();
        }
        ExecContext task_ctx = ctx;
        task_ctx.counters = &sinks[static_cast<size_t>(p)];
        int64_t start = ctx.trace->NowMicros();
        SIMDB_ASSIGN_OR_RETURN(out[static_cast<size_t>(p)],
                               ExecutePartition(task_ctx, p, slice));
        obs::TraceEvent ev;
        ev.category = "task";
        ev.name = name();
        ev.start_us = start;
        ev.dur_us = ctx.trace->NowMicros() - start;
        ev.pid = ctx.topology.NodeOfPartition(p);
        ev.tid = p % ctx.topology.partitions_per_node;
        ev.args = {{"node", stats != nullptr ? stats->node_id : -1},
                   {"partition", p},
                   {"rows",
                    static_cast<int64_t>(out[static_cast<size_t>(p)].size())}};
        ctx.trace->Record(std::move(ev));
        return Status::OK();
      }));
  if (profiling && stats != nullptr) {
    for (const OpCounterSink& sink : sinks) MergeCounterSink(*stats, sink);
  }
  return out;
}

int Job::Add(std::unique_ptr<Operator> op, std::vector<int> inputs,
             RowSchema schema) {
  int id = static_cast<int>(nodes_.size());
  for (int in : inputs) {
    SIMDB_CHECK(in >= 0 && in < id) << "job inputs must precede the node";
  }
  nodes_.push_back(Node{std::move(op), std::move(inputs), std::move(schema)});
  return id;
}

std::string Job::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += std::to_string(i) + ": " + nodes_[i].op->name() + " <- [";
    for (size_t j = 0; j < nodes_[i].inputs.size(); ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(nodes_[i].inputs[j]);
    }
    out += "] " + nodes_[i].schema.ToString() + "\n";
  }
  return out;
}

Status WrapNodeError(int node, const std::string& op_name, const Status& s) {
  return Status(s.code(), "node " + std::to_string(node) + " (" + op_name +
                              "): " + s.message());
}

Result<PartitionedRows> Executor::Run(const Job& job, ExecContext& ctx) {
  if (ctx.executor == ExecutorKind::kStageSequential) {
    return RunStageSequential(job, ctx);
  }
  return Scheduler::Run(job, ctx);
}

Result<PartitionedRows> Executor::RunStageSequential(const Job& job,
                                                     ExecContext& ctx) {
  const auto& nodes = job.nodes();
  if (nodes.empty()) return Status::PlanError("empty job");
  if (ctx.stats != nullptr && ctx.transport != nullptr &&
      ctx.transport->measures_wall_clock()) {
    ctx.stats->network_measured = true;
  }

  // Reference counts so intermediate outputs are freed when every consumer
  // has run (the root output always survives).
  std::vector<int> refcount(nodes.size(), 0);
  for (const auto& node : nodes) {
    for (int in : node.inputs) ++refcount[static_cast<size_t>(in)];
  }
  ++refcount[static_cast<size_t>(job.root())];

  Stopwatch sw;
  std::vector<int> stages = ComputeStages(job);
  std::vector<PartitionedRows> outputs(nodes.size());
  // Serving accounting at node granularity (this executor has no finer
  // tasks): bytes charged per live node output, and executed/skipped node
  // counts so executed + skipped == total holds here too.
  std::vector<int64_t> charged(nodes.size(), 0);
  uint64_t executed_nodes = 0;
  auto cleanup = [&] {
    if (ctx.budget != nullptr) {
      for (int64_t& c : charged) {
        if (c != 0) {
          ctx.budget->ReleaseMemory(c);
          c = 0;
        }
      }
    }
    if (ctx.stats != nullptr) {
      ctx.stats->tasks_total += nodes.size();
      ctx.stats->tasks_executed += executed_nodes;
      ctx.stats->tasks_skipped += nodes.size() - executed_nodes;
    }
  };
  for (size_t i = 0; i < nodes.size(); ++i) {
    // Cooperative serving checks, node-at-a-time (coarser than the
    // scheduler's per-task polls, but the same client-visible statuses).
    if (ctx.cancel != nullptr || ctx.budget != nullptr) {
      Status admit =
          ctx.cancel != nullptr ? ctx.cancel->Check() : Status::OK();
      if (admit.ok() && ctx.budget != nullptr) admit = ctx.budget->ChargeTask();
      if (!admit.ok()) {
        cleanup();
        if (ctx.stats != nullptr) {
          ctx.stats->has_task_dag = true;
          ctx.stats->wall_seconds += sw.ElapsedSeconds();
        }
        return admit;
      }
    }
    std::vector<const PartitionedRows*> inputs;
    inputs.reserve(nodes[i].inputs.size());
    for (int in : nodes[i].inputs) {
      inputs.push_back(&outputs[static_cast<size_t>(in)]);
    }
    OpStats op_stats;
    op_stats.name = nodes[i].op->name();
    op_stats.node_id = static_cast<int>(i);
    op_stats.input_ops = nodes[i].inputs;
    op_stats.barrier = !nodes[i].op->partition_local();
    op_stats.stage = stages[i];
    for (const PartitionedRows* in : inputs) op_stats.rows_in += RowsCount(*in);
    // An exchange that is the sole remaining consumer of its input may move
    // tuples out of it instead of copying (the input is released right after
    // anyway). The root's extra refcount keeps the final answer unstolen.
    PartitionedRows* steal = nullptr;
    auto* exchange = dynamic_cast<ExchangeOperator*>(nodes[i].op.get());
    if (exchange != nullptr && nodes[i].inputs.size() == 1 &&
        refcount[static_cast<size_t>(nodes[i].inputs[0])] == 1) {
      steal = &outputs[static_cast<size_t>(nodes[i].inputs[0])];
    }
    // Barrier non-exchange operators (RANK-ASSIGN, LIMIT) run whole-node;
    // give them one span here. Partition-local operators get per-partition
    // spans inside the PartitionOperator adapter, exchanges inside
    // RunExchange.
    const bool barrier_span = ctx.trace != nullptr && op_stats.barrier &&
                              exchange == nullptr;
    int64_t span_start = barrier_span ? ctx.trace->NowMicros() : 0;
    Result<PartitionedRows> executed =
        exchange != nullptr
            ? RunExchange(ctx, *exchange, inputs, steal, &op_stats)
            : nodes[i].op->Execute(ctx, inputs, &op_stats);
    if (barrier_span) {
      obs::TraceEvent ev;
      ev.category = "task";
      ev.name = op_stats.name;
      ev.start_us = span_start;
      ev.dur_us = ctx.trace->NowMicros() - span_start;
      ev.args = {{"node", static_cast<int64_t>(i)}};
      ctx.trace->Record(std::move(ev));
    }
    ++executed_nodes;
    if (!executed.ok()) {
      // Keep the partial stats trail and identify the failing node: error
      // reports stay deterministic and attributable instead of dropping the
      // per-partition context on the floor.
      cleanup();
      if (ctx.stats != nullptr) {
        ctx.stats->has_task_dag = true;
        ctx.stats->ops.push_back(std::move(op_stats));
        ctx.stats->wall_seconds += sw.ElapsedSeconds();
      }
      return WrapNodeError(static_cast<int>(i), nodes[i].op->name(),
                           executed.status());
    }
    outputs[i] = std::move(executed).value();
    // Normalize: every operator must emit exactly total_partitions parts.
    if (static_cast<int>(outputs[i].size()) != ctx.topology.total_partitions()) {
      cleanup();
      return Status::Internal("operator " + nodes[i].op->name() +
                              " produced wrong partition count");
    }
    if (ctx.budget != nullptr) {
      int64_t bytes = 0;
      for (const Rows& part : outputs[i]) {
        for (const Tuple& t : part) bytes += static_cast<int64_t>(TupleBytes(t));
      }
      Status s = ctx.budget->ChargeMemory(bytes);
      if (!s.ok()) {
        cleanup();
        if (ctx.stats != nullptr) {
          ctx.stats->has_task_dag = true;
          ctx.stats->ops.push_back(std::move(op_stats));
          ctx.stats->wall_seconds += sw.ElapsedSeconds();
        }
        return s;
      }
      charged[i] = bytes;
    }
    op_stats.rows_out = RowsCount(outputs[i]);
    op_stats.partition_rows.reserve(outputs[i].size());
    for (const Rows& part : outputs[i]) {
      op_stats.partition_rows.push_back(part.size());
    }
    if (ctx.stats != nullptr) ctx.stats->ops.push_back(std::move(op_stats));
    // Release inputs that are no longer needed.
    for (int in : nodes[i].inputs) {
      if (--refcount[static_cast<size_t>(in)] == 0) {
        outputs[static_cast<size_t>(in)] = PartitionedRows();
        if (ctx.budget != nullptr && charged[static_cast<size_t>(in)] != 0) {
          ctx.budget->ReleaseMemory(charged[static_cast<size_t>(in)]);
          charged[static_cast<size_t>(in)] = 0;
        }
      }
    }
  }
  cleanup();
  if (ctx.stats != nullptr) {
    ctx.stats->has_task_dag = true;
    ctx.stats->wall_seconds += sw.ElapsedSeconds();
  }
  return std::move(outputs[static_cast<size_t>(job.root())]);
}

}  // namespace simdb::hyracks
