#include "hyracks/exec.h"

#include <atomic>
#include <mutex>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace simdb::hyracks {

Status RunPerPartition(ExecContext& ctx, int num_partitions, OpStats* stats,
                       const std::function<Status(int)>& fn) {
  if (num_partitions <= 0) return Status::OK();
  if (stats != nullptr) {
    stats->partition_seconds.assign(static_cast<size_t>(num_partitions), 0.0);
  }
  // Every partition runs to completion and records its outcome in its own
  // slot — no shared mutable error state — so the error returned below does
  // not depend on thread scheduling: the lowest failing partition index wins,
  // with or without a stats sink, under any pool size.
  std::vector<Status> statuses(static_cast<size_t>(num_partitions));
  if (num_partitions == 1 || ctx.pool == nullptr) {
    for (int p = 0; p < num_partitions; ++p) {
      Stopwatch sw;
      statuses[static_cast<size_t>(p)] = fn(p);
      if (stats != nullptr) {
        stats->partition_seconds[static_cast<size_t>(p)] = sw.ElapsedSeconds();
      }
    }
  } else {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(static_cast<size_t>(num_partitions));
    for (int p = 0; p < num_partitions; ++p) {
      tasks.push_back([&, p] {
        Stopwatch sw;
        statuses[static_cast<size_t>(p)] = fn(p);
        if (stats != nullptr) {
          stats->partition_seconds[static_cast<size_t>(p)] = sw.ElapsedSeconds();
        }
      });
    }
    ctx.pool->RunAll(std::move(tasks));
  }
  for (int p = 0; p < num_partitions; ++p) {
    const Status& s = statuses[static_cast<size_t>(p)];
    if (!s.ok()) {
      return Status(s.code(),
                    "partition " + std::to_string(p) + ": " + s.message());
    }
  }
  return Status::OK();
}

int Job::Add(std::unique_ptr<Operator> op, std::vector<int> inputs,
             RowSchema schema) {
  int id = static_cast<int>(nodes_.size());
  for (int in : inputs) {
    SIMDB_CHECK(in >= 0 && in < id) << "job inputs must precede the node";
  }
  nodes_.push_back(Node{std::move(op), std::move(inputs), std::move(schema)});
  return id;
}

std::string Job::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += std::to_string(i) + ": " + nodes_[i].op->name() + " <- [";
    for (size_t j = 0; j < nodes_[i].inputs.size(); ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(nodes_[i].inputs[j]);
    }
    out += "] " + nodes_[i].schema.ToString() + "\n";
  }
  return out;
}

Result<PartitionedRows> Executor::Run(const Job& job, ExecContext& ctx) {
  const auto& nodes = job.nodes();
  if (nodes.empty()) return Status::PlanError("empty job");

  // Reference counts so intermediate outputs are freed when every consumer
  // has run (the root output always survives).
  std::vector<int> refcount(nodes.size(), 0);
  for (const auto& node : nodes) {
    for (int in : node.inputs) ++refcount[static_cast<size_t>(in)];
  }
  ++refcount[static_cast<size_t>(job.root())];

  Stopwatch sw;
  std::vector<PartitionedRows> outputs(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::vector<const PartitionedRows*> inputs;
    inputs.reserve(nodes[i].inputs.size());
    for (int in : nodes[i].inputs) {
      inputs.push_back(&outputs[static_cast<size_t>(in)]);
    }
    OpStats op_stats;
    op_stats.name = nodes[i].op->name();
    Result<PartitionedRows> executed = nodes[i].op->Execute(ctx, inputs, &op_stats);
    if (!executed.ok()) {
      // Keep the partial stats trail and identify the failing node: error
      // reports stay deterministic and attributable instead of dropping the
      // per-partition context on the floor.
      if (ctx.stats != nullptr) {
        ctx.stats->ops.push_back(std::move(op_stats));
        ctx.stats->wall_seconds += sw.ElapsedSeconds();
      }
      const Status& s = executed.status();
      return Status(s.code(), "node " + std::to_string(i) + " (" +
                                  nodes[i].op->name() + "): " + s.message());
    }
    outputs[i] = std::move(executed).value();
    // Normalize: every operator must emit exactly total_partitions parts.
    if (static_cast<int>(outputs[i].size()) != ctx.topology.total_partitions()) {
      return Status::Internal("operator " + nodes[i].op->name() +
                              " produced wrong partition count");
    }
    op_stats.rows_out = RowsCount(outputs[i]);
    if (ctx.stats != nullptr) ctx.stats->ops.push_back(std::move(op_stats));
    // Release inputs that are no longer needed.
    for (int in : nodes[i].inputs) {
      if (--refcount[static_cast<size_t>(in)] == 0) {
        outputs[static_cast<size_t>(in)] = PartitionedRows();
      }
    }
  }
  if (ctx.stats != nullptr) ctx.stats->wall_seconds += sw.ElapsedSeconds();
  return std::move(outputs[static_cast<size_t>(job.root())]);
}

}  // namespace simdb::hyracks
