#include "hyracks/tuple.h"

namespace simdb::hyracks {

int RowSchema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<int> RowSchema::Require(std::string_view name) const {
  int i = IndexOf(name);
  if (i < 0) {
    return Status::PlanError("column '" + std::string(name) +
                             "' not found in schema " + ToString());
  }
  return i;
}

RowSchema RowSchema::Concat(const RowSchema& a, const RowSchema& b) {
  std::vector<std::string> cols = a.columns_;
  cols.insert(cols.end(), b.columns_.begin(), b.columns_.end());
  return RowSchema(std::move(cols));
}

std::string RowSchema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i];
  }
  out += ")";
  return out;
}

uint64_t TupleBytes(const Tuple& tuple) {
  uint64_t total = 8;  // framing overhead
  for (const adm::Value& v : tuple) total += v.MemoryUsage();
  return total;
}

uint64_t RowsCount(const PartitionedRows& rows) {
  uint64_t n = 0;
  for (const Rows& r : rows) n += r.size();
  return n;
}

}  // namespace simdb::hyracks
