#include "hyracks/ops_scan.h"

namespace simdb::hyracks {

using adm::Value;

namespace {

Result<storage::Dataset*> FindDataset(ExecContext& ctx,
                                      const std::string& name) {
  if (ctx.catalog == nullptr) return Status::Internal("no catalog");
  storage::Dataset* ds = ctx.catalog->Find(name);
  if (ds == nullptr) return Status::NotFound("dataset " + name);
  return ds;
}

}  // namespace

Status DataScanOp::Prepare(ExecContext& ctx) {
  SIMDB_ASSIGN_OR_RETURN(ds_, FindDataset(ctx, dataset_));
  int parts = ctx.topology.total_partitions();
  if (ds_->num_partitions() != parts) {
    return Status::PlanError(
        "dataset " + dataset_ + " has " +
        std::to_string(ds_->num_partitions()) +
        " partitions but the cluster expects " + std::to_string(parts));
  }
  return Status::OK();
}

Result<Rows> DataScanOp::ExecutePartition(ExecContext&, int p,
                                          const std::vector<const Rows*>&) {
  SIMDB_ASSIGN_OR_RETURN(std::vector<Value> records, ds_->ScanPartition(p));
  Rows rows;
  rows.reserve(records.size());
  for (Value& rec : records) {
    rows.push_back({std::move(rec)});
  }
  return rows;
}

Result<Rows> ConstantSourceOp::ExecutePartition(
    ExecContext&, int p, const std::vector<const Rows*>&) {
  if (p != 0) return Rows();
  return rows_;
}

Status PrimaryLookupOp::Prepare(ExecContext& ctx) {
  SIMDB_ASSIGN_OR_RETURN(ds_, FindDataset(ctx, dataset_));
  return Status::OK();
}

Result<Rows> PrimaryLookupOp::ExecutePartition(
    ExecContext& ctx, int p, const std::vector<const Rows*>& inputs) {
  uint64_t probes = 0;
  uint64_t hits = 0;
  Rows rows;
  for (const Tuple& row : *inputs[0]) {
    const Value& pk = row[static_cast<size_t>(pk_column_)];
    if (!pk.is_int64()) {
      return Status::TypeError("PRIMARY-LOOKUP pk must be int64");
    }
    ++probes;
    SIMDB_ASSIGN_OR_RETURN(auto record, ds_->GetByPkInPartition(p, pk.AsInt64()));
    if (!record.has_value()) continue;
    ++hits;
    Tuple extended = row;
    extended.push_back(std::move(*record));
    rows.push_back(std::move(extended));
  }
  if (ctx.counters != nullptr) {
    CountOp(ctx, "lookup.probes", probes);
    CountOp(ctx, "lookup.hits", hits);
  }
  return rows;
}

}  // namespace simdb::hyracks
