#include "hyracks/ops_scan.h"

namespace simdb::hyracks {

using adm::Value;

namespace {

Result<storage::Dataset*> FindDataset(ExecContext& ctx,
                                      const std::string& name) {
  if (ctx.catalog == nullptr) return Status::Internal("no catalog");
  storage::Dataset* ds = ctx.catalog->Find(name);
  if (ds == nullptr) return Status::NotFound("dataset " + name);
  return ds;
}

}  // namespace

Result<PartitionedRows> DataScanOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  if (!inputs.empty()) return Status::Internal("DATA-SCAN takes no inputs");
  SIMDB_ASSIGN_OR_RETURN(storage::Dataset * ds, FindDataset(ctx, dataset_));
  int parts = ctx.topology.total_partitions();
  if (ds->num_partitions() != parts) {
    return Status::PlanError(
        "dataset " + dataset_ + " has " +
        std::to_string(ds->num_partitions()) +
        " partitions but the cluster expects " + std::to_string(parts));
  }
  PartitionedRows out(static_cast<size_t>(parts));
  SIMDB_RETURN_IF_ERROR(
      RunPerPartition(ctx, parts, stats, [&](int p) -> Status {
        SIMDB_ASSIGN_OR_RETURN(std::vector<Value> records, ds->ScanPartition(p));
        Rows& rows = out[static_cast<size_t>(p)];
        rows.reserve(records.size());
        for (Value& rec : records) {
          rows.push_back({std::move(rec)});
        }
        return Status::OK();
      }));
  return out;
}

Result<PartitionedRows> ConstantSourceOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats*) {
  if (!inputs.empty()) {
    return Status::Internal("CONSTANT-SOURCE takes no inputs");
  }
  PartitionedRows out(
      static_cast<size_t>(ctx.topology.total_partitions()));
  out[0] = rows_;
  return out;
}

Result<PartitionedRows> PrimaryLookupOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  if (inputs.size() != 1) return Status::Internal("PRIMARY-LOOKUP input");
  SIMDB_ASSIGN_OR_RETURN(storage::Dataset * ds, FindDataset(ctx, dataset_));
  const PartitionedRows& in = *inputs[0];
  PartitionedRows out(in.size());
  SIMDB_RETURN_IF_ERROR(RunPerPartition(
      ctx, static_cast<int>(in.size()), stats, [&](int p) -> Status {
        Rows& rows = out[static_cast<size_t>(p)];
        for (const Tuple& row : in[static_cast<size_t>(p)]) {
          const Value& pk = row[static_cast<size_t>(pk_column_)];
          if (!pk.is_int64()) {
            return Status::TypeError("PRIMARY-LOOKUP pk must be int64");
          }
          SIMDB_ASSIGN_OR_RETURN(auto record,
                                 ds->GetByPkInPartition(p, pk.AsInt64()));
          if (!record.has_value()) continue;
          Tuple extended = row;
          extended.push_back(std::move(*record));
          rows.push_back(std::move(extended));
        }
        return Status::OK();
      }));
  return out;
}

}  // namespace simdb::hyracks
