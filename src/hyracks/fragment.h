#ifndef SIMDB_HYRACKS_FRAGMENT_H_
#define SIMDB_HYRACKS_FRAGMENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "adm/wire.h"
#include "common/result.h"
#include "hyracks/ops_exchange.h"
#include "transport/transport.h"

namespace simdb::hyracks::fragment {

/// Job-fragment serde and execution: the bridge between the executors'
/// exchange builds and the socket transport's worker processes.
///
/// A fragment is one per-(node, partition) task closure — "build destination
/// partition `dst` of this exchange" — shipped to the worker that owns the
/// destination's node, executed there with the *same* BuildDestination code
/// the parent would run, and gathered back as rows plus the worker's own
/// traffic accounting. Because both sides run identical operator code over
/// an identical input slice, remote and local builds are bit-identical; the
/// modeled/shm backends stay the differential oracle for this path.
///
/// Layering: this module lives in the operator library, which the transport
/// library must not depend on. The worker-side interpreter is therefore
/// installed into transport::InstallFragmentInterpreter during static
/// initialization (pre-main, pre-fork); the transport calls it through the
/// hook without knowing operators exist. docs/DISTRIBUTED.md is the
/// handbook for the full lifecycle.

/// Extracts the operator's wire closure. Returns false when the operator
/// kind has no registered closure (an exchange subclass this module does not
/// know); remote dispatch then falls back to a local build.
bool ClosureFor(const ExchangeOperator& op, adm::FragmentClosure* closure);

/// Encodes the kFragment request payload for destination `dst`: fragment
/// header, operator closure, then one row group per source partition — the
/// exact input slice the destination's build consumes (hash: the rows routed
/// to `dst`; broadcast/gather/merge-gather: every row, or nothing when the
/// destination is not partition 0). `*slice_rows` receives the slice's row
/// count; 0 means a remote build would be trivially empty and the caller
/// should build locally instead of paying a round trip.
void EncodeFragmentRequest(const ClusterTopology& topology, uint64_t query_id,
                           const adm::FragmentClosure& closure, int dst,
                           const PartitionedRows& in,
                           const ExchangeOperator::Routing& routing,
                           std::string* payload, size_t* slice_rows);

/// A decoded kFragmentResult payload: the worker's accounting plus the rows
/// it built.
struct RemoteBuildResult {
  adm::FragmentResultHeader header;
  Rows rows;
};

Result<RemoteBuildResult> DecodeFragmentResult(std::string_view payload);

/// Worker-side entry point: decodes a kFragment request payload,
/// reconstructs the operator from its closure, runs the real
/// BuildDestination over the shipped slice, and encodes the result (or an
/// exact error Status). Installed as the transport's fragment interpreter;
/// public so tests can drive it without a forked process.
transport::FragmentReply InterpretFragment(std::string_view request_payload);

/// Parent-side remote build. When the context's transport executes fragments
/// remotely, encodes the destination's task closure, dispatches it to the
/// owning node's worker, and decodes the gathered result into `*out` with
/// the worker's accounting merged into `*stats` (remote compute seconds kept
/// separate from wire time). Sets `*handled` = false — caller builds locally,
/// answer-identical — when the transport has no remote execution, the
/// operator has no closure, the input slice is empty, or the worker refused
/// the fragment as cancelled. Any other remote failure is returned and fails
/// the build task, exactly like a failed Ship.
Status TryBuildRemote(ExecContext& ctx, ExchangeOperator& op, int dst,
                      const PartitionedRows& in,
                      const ExchangeOperator::Routing& routing, OpStats* stats,
                      Rows* out, bool* handled);

}  // namespace simdb::hyracks::fragment

#endif  // SIMDB_HYRACKS_FRAGMENT_H_
