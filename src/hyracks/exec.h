#ifndef SIMDB_HYRACKS_EXEC_H_
#define SIMDB_HYRACKS_EXEC_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "hyracks/tuple.h"
#include "storage/catalog.h"
#include "storage/inverted_index.h"

namespace simdb::hyracks {

/// Shape of the simulated shared-nothing cluster: partitions are laid out
/// contiguously across nodes (paper: 2 partitions per node, 8 nodes).
struct ClusterTopology {
  int num_nodes = 1;
  int partitions_per_node = 2;

  int total_partitions() const { return num_nodes * partitions_per_node; }
  int NodeOfPartition(int p) const { return p / partitions_per_node; }
};

/// Per-operator execution counters; the cluster cost model composes these
/// into a simulated makespan (see cluster/cost_model.h).
struct OpStats {
  std::string name;
  /// Measured compute seconds for each partition's work.
  std::vector<double> partition_seconds;
  uint64_t rows_out = 0;
  /// Exchange traffic (zero for non-exchange operators).
  uint64_t local_bytes = 0;
  uint64_t remote_bytes = 0;
  uint64_t remote_transfers = 0;
};

struct ExecStats {
  std::vector<OpStats> ops;
  double wall_seconds = 0;

  uint64_t TotalRemoteBytes() const {
    uint64_t total = 0;
    for (const OpStats& op : ops) total += op.remote_bytes;
    return total;
  }
};

/// Everything an operator needs at runtime. `stats` may be null.
struct ExecContext {
  ThreadPool* pool = nullptr;
  storage::Catalog* catalog = nullptr;
  ClusterTopology topology;
  ExecStats* stats = nullptr;
  storage::TOccurrenceAlgorithm t_occurrence_algorithm =
      storage::TOccurrenceAlgorithm::kScanCount;
  /// Serve inverted-index probes from the decoded posting-list cache. The
  /// cached and uncached paths must be answer-identical (checked by the
  /// differential fuzz harness).
  bool posting_cache_enabled = true;
};

/// A physical operator. Execution is stage-materialized: an operator
/// consumes fully materialized partitioned inputs and produces partitioned
/// output. Local operators parallelize across partitions via RunPerPartition;
/// exchange operators reroute tuples between partitions and account traffic.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual std::string name() const = 0;
  virtual Result<PartitionedRows> Execute(
      ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
      OpStats* stats) = 0;
};

/// Runs `fn(p)` for every partition on the context's thread pool, recording
/// per-partition compute seconds into `stats` (when non-null). Returns the
/// first error encountered.
Status RunPerPartition(ExecContext& ctx, int num_partitions, OpStats* stats,
                       const std::function<Status(int)>& fn);

/// A dataflow DAG of operators. Nodes must be added in topological order
/// (inputs referencing earlier nodes only); the last node is the root whose
/// output the executor returns. A node may feed several consumers — that is
/// the REPLICATE / materialize-reuse pattern of the paper (Figure 20): its
/// output is computed once and shared.
class Job {
 public:
  struct Node {
    std::unique_ptr<Operator> op;
    std::vector<int> inputs;
    RowSchema schema;
  };

  /// Returns the id of the new node.
  int Add(std::unique_ptr<Operator> op, std::vector<int> inputs,
          RowSchema schema);

  const std::vector<Node>& nodes() const { return nodes_; }
  const RowSchema& schema(int id) const { return nodes_[id].schema; }
  int root() const { return static_cast<int>(nodes_.size()) - 1; }

  std::string ToString() const;

 private:
  std::vector<Node> nodes_;
};

/// Executes a Job: topological, node at a time, sharing node outputs across
/// consumers. Returns the root node's partitioned output.
class Executor {
 public:
  static Result<PartitionedRows> Run(const Job& job, ExecContext& ctx);
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_EXEC_H_
