#ifndef SIMDB_HYRACKS_EXEC_H_
#define SIMDB_HYRACKS_EXEC_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "hyracks/budget.h"
#include "hyracks/tuple.h"
#include "storage/catalog.h"
#include "storage/inverted_index.h"

namespace simdb::obs {
class TraceCollector;
}  // namespace simdb::obs

namespace simdb::transport {
class Transport;
}  // namespace simdb::transport

namespace simdb::hyracks {

/// Shape of the simulated shared-nothing cluster: partitions are laid out
/// contiguously across nodes (paper: 2 partitions per node, 8 nodes).
struct ClusterTopology {
  int num_nodes = 1;
  int partitions_per_node = 2;

  int total_partitions() const { return num_nodes * partitions_per_node; }
  int NodeOfPartition(int p) const { return p / partitions_per_node; }
};

/// Sink for operator-specific profiling counters (posting-cache hits, join
/// build rows, ...). Each task gets a private sink, so Add needs no
/// synchronization; the executor merges sinks by summing per name, which is
/// order-independent and therefore deterministic under any interleaving.
/// Names are static-lifetime literals — the catalogue in
/// docs/OBSERVABILITY.md is checked against them in CI.
struct OpCounterSink {
  std::vector<std::pair<const char*, uint64_t>> entries;

  void Add(const char* name, uint64_t delta) { entries.emplace_back(name, delta); }
};

/// Per-operator execution counters; the cluster cost model composes these
/// into a simulated makespan (see cluster/cost_model.h).
struct OpStats {
  std::string name;
  /// Job node id and input node ids: the task-DAG shape the cost model needs
  /// to compute a critical-path makespan. -1 / empty when the stats were not
  /// produced by a job executor (hand-built stats, direct operator calls).
  int node_id = -1;
  std::vector<int> input_ops;
  /// True for pipeline barriers (exchanges and whole-node operators): every
  /// input partition must be complete before any output partition exists.
  bool barrier = false;
  /// Pipeline stage: the number of barrier operators on the longest path
  /// from any source to this node (sources are stage 0). Set by both
  /// executors via ComputeStages.
  int stage = 0;
  /// Measured compute seconds for each partition's work. For exchanges this
  /// is the per-destination build time (plus routing time spread evenly).
  std::vector<double> partition_seconds;
  uint64_t rows_out = 0;
  /// Total rows consumed across all inputs and partitions.
  uint64_t rows_in = 0;
  /// Rows produced by each output partition (skew diagnosis). Same length
  /// as partition_seconds.
  std::vector<uint64_t> partition_rows;
  /// Exchange traffic (zero for non-exchange operators). Accounted per
  /// destination and merged in destination order, so the counters are
  /// identical under any thread-pool size.
  uint64_t local_bytes = 0;
  uint64_t remote_bytes = 0;
  uint64_t remote_transfers = 0;
  /// Wall-clock seconds the destination builds spent inside Transport::Ship
  /// or on the wire side of a fragment round trip (zero under the modeled
  /// backend, which never ships). Already contained in partition_seconds —
  /// kept separately so the cost model can report how much of the exchange
  /// time was transport.
  double transport_seconds = 0;
  /// Wall-clock seconds of destination builds that executed *inside remote
  /// worker processes* (socket backend with fragment dispatch). Disjoint
  /// from transport_seconds: a fragment round trip splits into wire time
  /// (transport_seconds) and the worker's own build time (here). Also inside
  /// partition_seconds.
  double remote_compute_seconds = 0;
  /// How many of this exchange's destination builds ran remotely.
  uint64_t remote_builds = 0;
  /// Operator-specific counters (name -> summed value), sorted by name.
  /// Populated only when profiling is enabled (ctx.trace != nullptr).
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// Folds per-task counter sinks into `stats.counters`: sums per name, sorted
/// by name. Deterministic regardless of the order sinks are merged in.
void MergeCounterSink(OpStats& stats, const OpCounterSink& sink);

struct ExecStats {
  std::vector<OpStats> ops;
  double wall_seconds = 0;
  /// True when `ops` carries node/input DAG info (set by both executors);
  /// enables the cost model's critical-path makespan.
  bool has_task_dag = false;
  /// True when the run shipped exchange traffic through a wall-clock
  /// transport backend (shm, socket): transport time is then already inside
  /// the exchange partition_seconds, and the cost model must report the
  /// measured seconds instead of charging its modeled network formula.
  bool network_measured = false;
  /// Task accounting (task-graph scheduler; the stage-sequential executor
  /// counts whole nodes). Every planned task is either executed or skipped —
  /// executed + skipped == total proves the graph drained, which is what the
  /// cancellation tests assert: no task is left behind after a cancel.
  uint64_t tasks_total = 0;
  uint64_t tasks_executed = 0;
  uint64_t tasks_skipped = 0;
  /// Exchange build tasks whose destination was produced inside a remote
  /// worker process (see hyracks/fragment.h). Zero everywhere except the
  /// socket backend with fragment dispatch on.
  uint64_t tasks_remote = 0;

  uint64_t TotalRemoteBytes() const {
    uint64_t total = 0;
    for (const OpStats& op : ops) total += op.remote_bytes;
    return total;
  }

  double TotalRemoteComputeSeconds() const {
    double total = 0;
    for (const OpStats& op : ops) total += op.remote_compute_seconds;
    return total;
  }
};

/// Which dataflow runtime executes jobs. The two must be answer-identical
/// (the differential fuzz harness cross-checks them on every CI run).
enum class ExecutorKind {
  /// Per-(node, partition) task graph scheduled on the thread pool: a
  /// partition pipelines through chains of local operators while sibling
  /// partitions and independent plan branches run concurrently.
  kScheduler,
  /// Legacy node-at-a-time execution with a global barrier per operator.
  kStageSequential,
};

/// One remote-eligible exchange build task, as seen by the scheduler's
/// remote-task lease bookkeeping (the contract is documented in DESIGN.md).
/// A lease opens when the scheduler admits a kBuild task whose context could
/// dispatch it to a worker, and closes — exactly once — when the task's
/// outcome is recorded, whether the destination was built remotely, locally,
/// or failed. The scheduler asserts every lease closed at finalize, so a
/// fragment can never be silently lost between dispatch and completion.
struct RemoteTaskLease {
  int op_node = -1;        // job DAG node id of the exchange
  int dst_partition = -1;  // destination partition the task built
  int cluster_node = -1;   // cluster node owning the destination
  bool remote = false;     // true: built inside a worker process
  bool ok = false;         // task outcome
  double remote_compute_seconds = 0;  // worker-side build time (remote only)
};

/// Completion callback for remote-task leases. Invoked by the scheduler from
/// pool threads, outside its own mutex, once per closing lease; the callee
/// synchronizes its own state.
using RemoteLeaseCallback = std::function<void(const RemoteTaskLease&)>;

/// Everything an operator needs at runtime. `stats` may be null.
struct ExecContext {
  ThreadPool* pool = nullptr;
  storage::Catalog* catalog = nullptr;
  ClusterTopology topology;
  ExecStats* stats = nullptr;
  storage::TOccurrenceAlgorithm t_occurrence_algorithm =
      storage::TOccurrenceAlgorithm::kScanCount;
  /// Serve inverted-index probes from the decoded posting-list cache. The
  /// cached and uncached paths must be answer-identical (checked by the
  /// differential fuzz harness).
  bool posting_cache_enabled = true;
  /// Batch execution: the hot similarity operators (inverted-index search,
  /// select/join verification, similarity assign) process rows in fixed-size
  /// columnar scratch batches over dense token ids and dispatch to the
  /// simd:: kernels. Off forces the tuple-at-a-time path everywhere; the
  /// two paths must be answer-identical (checked by the batch differential
  /// fuzz seeds).
  bool batch_execution = true;
  /// Rows per columnar scratch batch on the batch path.
  int batch_size = 1024;
  ExecutorKind executor = ExecutorKind::kScheduler;
  /// Exchange transport backend. Null behaves exactly like the modeled
  /// backend: destinations are built in place and no bytes are shipped.
  /// When non-null, every built exchange destination is offered to
  /// Transport::ShouldShip and round-tripped through Transport::Ship inside
  /// the build task (see BuildAndShipDestination in ops_exchange.h).
  transport::Transport* transport = nullptr;
  /// Non-null enables query profiling: executors record per-task spans here
  /// and operators emit their specific counters. Null (the default) is the
  /// zero-overhead path — operators test this single pointer and skip all
  /// counter work.
  obs::TraceCollector* trace = nullptr;
  /// Per-task counter sink, valid only for the duration of the current
  /// partition task. Set by the executors (on a per-task copy of the
  /// context) when profiling; operators write through it via CountOp.
  OpCounterSink* counters = nullptr;
  /// Cooperative cancellation: when non-null, both executors poll it before
  /// starting each task (scheduler) / node (stage-sequential). Tasks already
  /// running finish; everything else is skipped, partial outputs released.
  /// Null (the default) is the zero-overhead single-query path.
  const CancellationToken* cancel = nullptr;
  /// Per-query resource quotas (memory held in live intermediate partitions,
  /// task count). Null (the default) disables all accounting.
  ResourceBudget* budget = nullptr;
  /// Serving-layer query id, stamped into every dispatched fragment so a
  /// kCancelFragment broadcast can name the query whose fragments workers
  /// must refuse. 0 means "unattributed" (queries outside the serving
  /// layer); workers never match id 0 against their cancel ledger.
  uint64_t query_id = 0;
  /// When non-null, the scheduler reports every closing remote-task lease
  /// here (see RemoteTaskLease). Null skips all lease callback work.
  const RemoteLeaseCallback* on_lease_complete = nullptr;
};

/// Adds `delta` to the named operator counter when profiling is on; a single
/// predicted-not-taken branch when off.
inline void CountOp(ExecContext& ctx, const char* name, uint64_t delta) {
  if (ctx.counters != nullptr) ctx.counters->Add(name, delta);
}

/// A physical operator. Operators consume fully materialized partitioned
/// inputs and produce partitioned output; partition-local operators
/// additionally expose a per-partition hook (see PartitionOperator) that the
/// task-graph scheduler drives directly.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual std::string name() const = 0;
  virtual Result<PartitionedRows> Execute(
      ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
      OpStats* stats) = 0;
  /// True when output partition p is a pure function of partition p of each
  /// input (scan, select, project, join, ...). False for pipeline barriers
  /// (exchanges, rank-assign, limit).
  virtual bool partition_local() const { return false; }
};

/// A partition-local physical operator: implements ExecutePartition and
/// inherits a stage-materialized Execute adapter that fans ExecutePartition
/// out over all partitions via RunPerPartition. The task-graph scheduler
/// calls ExecutePartition directly, so one partition can flow through a
/// chain of local operators while sibling partitions run concurrently.
class PartitionOperator : public Operator {
 public:
  bool partition_local() const final { return true; }

  /// Expected input count: >= 0 exact, -1 for one-or-more (UNION-ALL).
  virtual int num_inputs() const { return 1; }

  /// Runs once per job execution before any partition task: resolve catalog
  /// objects, validate the plan. Errors here are node-level (no partition
  /// prefix). Called single-threaded by both executors.
  virtual Status Prepare(ExecContext& ctx) {
    (void)ctx;
    return Status::OK();
  }

  /// Computes output partition `p` from partition `p` of each input.
  /// Must be safe to run concurrently with other partitions of this operator
  /// and with other operators' partition tasks.
  virtual Result<Rows> ExecutePartition(
      ExecContext& ctx, int p, const std::vector<const Rows*>& inputs) = 0;

  /// Adapter for the stage-sequential executor and direct operator calls.
  Result<PartitionedRows> Execute(
      ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
      OpStats* stats) final;

  /// Arity + partition-count validation shared by the adapter and the
  /// scheduler's graph builder.
  Status ValidateInputArity(size_t provided) const;
};

/// Runs `fn(p)` for every partition on the context's thread pool, recording
/// per-partition compute seconds into `stats` (when non-null). Returns the
/// first error encountered.
Status RunPerPartition(ExecContext& ctx, int num_partitions, OpStats* stats,
                       const std::function<Status(int)>& fn);

/// A dataflow DAG of operators. Nodes must be added in topological order
/// (inputs referencing earlier nodes only); the last node is the root whose
/// output the executor returns. A node may feed several consumers — that is
/// the REPLICATE / materialize-reuse pattern of the paper (Figure 20): its
/// output is computed once and shared.
class Job {
 public:
  struct Node {
    std::unique_ptr<Operator> op;
    std::vector<int> inputs;
    RowSchema schema;
  };

  /// Returns the id of the new node.
  int Add(std::unique_ptr<Operator> op, std::vector<int> inputs,
          RowSchema schema);

  const std::vector<Node>& nodes() const { return nodes_; }
  const RowSchema& schema(int id) const { return nodes_[id].schema; }
  int root() const { return static_cast<int>(nodes_.size()) - 1; }

  std::string ToString() const;

 private:
  std::vector<Node> nodes_;
};

/// Executes a Job and returns the root node's partitioned output. Dispatches
/// on ctx.executor: the dependency-scheduled task graph (default, see
/// hyracks/scheduler.h) or the legacy stage-sequential loop. Both executors
/// are answer-identical and report errors identically: the lowest failing
/// (node, partition) wins regardless of thread interleaving.
class Executor {
 public:
  static Result<PartitionedRows> Run(const Job& job, ExecContext& ctx);

  /// Node-at-a-time execution with a barrier after every operator.
  static Result<PartitionedRows> RunStageSequential(const Job& job,
                                                    ExecContext& ctx);
};

/// Formats a task failure exactly like the stage-sequential executor:
/// "node N (NAME): [partition P: ]message". Shared with the scheduler so
/// error strings are byte-identical across executors and pool sizes.
Status WrapNodeError(int node, const std::string& op_name, const Status& s);

/// Pipeline stage per job node: stage(n) = max over inputs i of
/// (stage(i) + barrier(i)), with sources at stage 0. Barriers count on the
/// *producing* side, so the operators consuming an exchange's output are one
/// stage later than the ones feeding it — matching the paper's stage-1/2/3
/// narrative for the three-stage similarity join.
std::vector<int> ComputeStages(const Job& job);

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_EXEC_H_
