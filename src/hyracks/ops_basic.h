#ifndef SIMDB_HYRACKS_OPS_BASIC_H_
#define SIMDB_HYRACKS_OPS_BASIC_H_

#include <memory>
#include <string>
#include <vector>

#include "hyracks/batch.h"
#include "hyracks/exec.h"
#include "hyracks/expr.h"

namespace simdb::hyracks {

/// Filters rows where `predicate` evaluates to boolean true. When the
/// predicate is a recognized similarity check (see MatchSimCheckCall) and
/// batch execution is on, rows are verified through the columnar SIMD
/// kernels in batch_size chunks; unvectorizable rows fall back to the tuple
/// evaluator per row, in order.
class SelectOp : public PartitionOperator {
 public:
  explicit SelectOp(ExprPtr predicate)
      : predicate_(std::move(predicate)), batch_(MatchSimCheckCall(predicate_)) {}
  std::string name() const override {
    return "SELECT(" + predicate_->ToString() + ")";
  }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const ExprPtr& predicate() const { return predicate_; }

 private:
  ExprPtr predicate_;
  std::optional<SimBatchCall> batch_;
};

/// Appends one computed column per expression to each row. When the last
/// expression is similarity-jaccard(a, b) and batch execution is on, that
/// column is computed through the batched SIMD kernel.
class AssignOp : public PartitionOperator {
 public:
  AssignOp(std::vector<ExprPtr> exprs, std::vector<std::string> names)
      : exprs_(std::move(exprs)),
        names_(std::move(names)),
        batch_(exprs_.empty() ? std::nullopt : MatchSimEvalCall(exprs_.back())) {}
  std::string name() const override;
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const std::vector<ExprPtr>& exprs() const { return exprs_; }

 private:
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
  std::optional<SimBatchCall> batch_;
};

/// Keeps only the listed column positions, in the given order.
class ProjectOp : public PartitionOperator {
 public:
  explicit ProjectOp(std::vector<int> keep) : keep_(std::move(keep)) {}
  std::string name() const override { return "PROJECT"; }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const std::vector<int>& columns() const { return keep_; }

 private:
  std::vector<int> keep_;
};

struct SortKey {
  int column;
  bool ascending = true;
};

/// Per-partition sort. Combine with MergeGatherOp for a global order.
class SortOp : public PartitionOperator {
 public:
  explicit SortOp(std::vector<SortKey> keys) : keys_(std::move(keys)) {}
  std::string name() const override { return "SORT"; }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const std::vector<SortKey>& keys() const { return keys_; }

 private:
  std::vector<SortKey> keys_;
};

/// Expands a list-valued expression: one output row per element, keeping the
/// input columns and appending the element (and its 1-based position when
/// `with_position`, supporting AQL's `for $x at $i in ...`).
class UnnestOp : public PartitionOperator {
 public:
  UnnestOp(ExprPtr list_expr, bool with_position)
      : list_expr_(std::move(list_expr)), with_position_(with_position) {}
  std::string name() const override {
    return "UNNEST(" + list_expr_->ToString() + ")";
  }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const ExprPtr& list_expr() const { return list_expr_; }
  bool with_position() const { return with_position_; }

 private:
  ExprPtr list_expr_;
  bool with_position_;
};

/// Concatenates any number of inputs partition-wise (UNION ALL).
class UnionAllOp : public PartitionOperator {
 public:
  std::string name() const override { return "UNION-ALL"; }
  int num_inputs() const override { return -1; }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
};

/// Appends an int64 rank column start, start+1, ... in row order. Input must
/// already be gathered into partition 0 (used to materialize the global token
/// order of the three-stage join's stage 1; AQL's `at $i` is 1-based).
/// A pipeline barrier: the whole input must exist before ranks are assigned.
class RankAssignOp : public Operator {
 public:
  explicit RankAssignOp(int64_t start = 0) : start_(start) {}
  std::string name() const override { return "RANK-ASSIGN"; }
  Result<PartitionedRows> Execute(
      ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
      OpStats* stats) override;

 private:
  int64_t start_;
};

/// Caps the total number of output rows (first `limit` rows by partition
/// order; apply after a gather for deterministic results). A pipeline
/// barrier: the cap spans partitions.
class LimitOp : public Operator {
 public:
  explicit LimitOp(int64_t limit) : limit_(limit) {}
  std::string name() const override {
    return "LIMIT(" + std::to_string(limit_) + ")";
  }
  Result<PartitionedRows> Execute(
      ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
      OpStats* stats) override;

 private:
  int64_t limit_;
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_OPS_BASIC_H_
