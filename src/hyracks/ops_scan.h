#ifndef SIMDB_HYRACKS_OPS_SCAN_H_
#define SIMDB_HYRACKS_OPS_SCAN_H_

#include <string>
#include <vector>

#include "hyracks/exec.h"
#include "hyracks/expr.h"
#include "storage/catalog.h"

namespace simdb::hyracks {

/// Scans a dataset's primary index; partition p of the output holds the
/// records of dataset partition p (one record-object column). The dataset's
/// partition count must equal the cluster's total partition count
/// (co-location, as in AsterixDB).
class DataScanOp : public PartitionOperator {
 public:
  explicit DataScanOp(std::string dataset) : dataset_(std::move(dataset)) {}
  std::string name() const override { return "DATA-SCAN(" + dataset_ + ")"; }
  int num_inputs() const override { return 0; }
  Status Prepare(ExecContext& ctx) override;
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const std::string& dataset() const { return dataset_; }

 private:
  std::string dataset_;
  storage::Dataset* ds_ = nullptr;  // resolved by Prepare
};

/// Emits fixed rows into partition 0 (used for constant search keys, which
/// the coordinator then broadcasts — paper Figure 6 step 1).
class ConstantSourceOp : public PartitionOperator {
 public:
  explicit ConstantSourceOp(Rows rows) : rows_(std::move(rows)) {}
  std::string name() const override { return "CONSTANT-SOURCE"; }
  int num_inputs() const override { return 0; }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;

 private:
  Rows rows_;
};

/// Looks up each input row's pk (int64 column `pk_column`) in the local
/// partition of the dataset's primary index and appends the record object.
/// Rows whose pk does not exist locally are dropped — by construction the
/// upstream secondary-index search produced pks of the same partition.
class PrimaryLookupOp : public PartitionOperator {
 public:
  PrimaryLookupOp(std::string dataset, int pk_column)
      : dataset_(std::move(dataset)), pk_column_(pk_column) {}
  std::string name() const override {
    return "PRIMARY-LOOKUP(" + dataset_ + ")";
  }
  Status Prepare(ExecContext& ctx) override;
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const std::string& dataset() const { return dataset_; }
  int pk_column() const { return pk_column_; }

 private:
  std::string dataset_;
  int pk_column_;
  storage::Dataset* ds_ = nullptr;  // resolved by Prepare
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_OPS_SCAN_H_
