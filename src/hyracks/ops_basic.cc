#include "hyracks/ops_basic.h"

#include <algorithm>

namespace simdb::hyracks {

using adm::Value;

namespace {

Status ExpectOneInput(const std::vector<const PartitionedRows*>& inputs,
                      const std::string& op) {
  if (inputs.size() != 1) {
    return Status::Internal(op + " expects exactly one input");
  }
  return Status::OK();
}

}  // namespace

Result<PartitionedRows> SelectOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  SIMDB_RETURN_IF_ERROR(ExpectOneInput(inputs, "SELECT"));
  const PartitionedRows& in = *inputs[0];
  PartitionedRows out(in.size());
  SIMDB_RETURN_IF_ERROR(RunPerPartition(
      ctx, static_cast<int>(in.size()), stats, [&](int p) -> Status {
        for (const Tuple& row : in[static_cast<size_t>(p)]) {
          SIMDB_ASSIGN_OR_RETURN(Value v, predicate_->Eval(row));
          if (v.is_boolean() && v.AsBoolean()) {
            out[static_cast<size_t>(p)].push_back(row);
          } else if (!v.is_boolean() && !v.is_missing() && !v.is_null()) {
            return Status::TypeError("SELECT predicate must return boolean");
          }
        }
        return Status::OK();
      }));
  return out;
}

std::string AssignOp::name() const {
  std::string out = "ASSIGN(";
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[i] + ":=" + exprs_[i]->ToString();
  }
  out += ")";
  return out;
}

Result<PartitionedRows> AssignOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  SIMDB_RETURN_IF_ERROR(ExpectOneInput(inputs, "ASSIGN"));
  const PartitionedRows& in = *inputs[0];
  PartitionedRows out(in.size());
  SIMDB_RETURN_IF_ERROR(RunPerPartition(
      ctx, static_cast<int>(in.size()), stats, [&](int p) -> Status {
        Rows& rows = out[static_cast<size_t>(p)];
        rows.reserve(in[static_cast<size_t>(p)].size());
        for (const Tuple& row : in[static_cast<size_t>(p)]) {
          Tuple extended = row;
          // Evaluate against the growing tuple so later expressions may
          // reference the columns produced by earlier ones.
          for (const ExprPtr& e : exprs_) {
            SIMDB_ASSIGN_OR_RETURN(Value v, e->Eval(extended));
            extended.push_back(std::move(v));
          }
          rows.push_back(std::move(extended));
        }
        return Status::OK();
      }));
  return out;
}

Result<PartitionedRows> ProjectOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  SIMDB_RETURN_IF_ERROR(ExpectOneInput(inputs, "PROJECT"));
  const PartitionedRows& in = *inputs[0];
  PartitionedRows out(in.size());
  SIMDB_RETURN_IF_ERROR(RunPerPartition(
      ctx, static_cast<int>(in.size()), stats, [&](int p) -> Status {
        Rows& rows = out[static_cast<size_t>(p)];
        rows.reserve(in[static_cast<size_t>(p)].size());
        for (const Tuple& row : in[static_cast<size_t>(p)]) {
          Tuple projected;
          projected.reserve(keep_.size());
          for (int k : keep_) {
            if (k < 0 || static_cast<size_t>(k) >= row.size()) {
              return Status::Internal("PROJECT column out of range");
            }
            projected.push_back(row[static_cast<size_t>(k)]);
          }
          rows.push_back(std::move(projected));
        }
        return Status::OK();
      }));
  return out;
}

Result<PartitionedRows> SortOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  SIMDB_RETURN_IF_ERROR(ExpectOneInput(inputs, "SORT"));
  PartitionedRows out = *inputs[0];  // copy, then sort in place
  SIMDB_RETURN_IF_ERROR(RunPerPartition(
      ctx, static_cast<int>(out.size()), stats, [&](int p) -> Status {
        Rows& rows = out[static_cast<size_t>(p)];
        std::stable_sort(rows.begin(), rows.end(),
                         [this](const Tuple& a, const Tuple& b) {
                           for (const SortKey& k : keys_) {
                             int c = Value::Compare(
                                 a[static_cast<size_t>(k.column)],
                                 b[static_cast<size_t>(k.column)]);
                             if (c != 0) return k.ascending ? c < 0 : c > 0;
                           }
                           return false;
                         });
        return Status::OK();
      }));
  return out;
}

Result<PartitionedRows> UnnestOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  SIMDB_RETURN_IF_ERROR(ExpectOneInput(inputs, "UNNEST"));
  const PartitionedRows& in = *inputs[0];
  PartitionedRows out(in.size());
  SIMDB_RETURN_IF_ERROR(RunPerPartition(
      ctx, static_cast<int>(in.size()), stats, [&](int p) -> Status {
        Rows& rows = out[static_cast<size_t>(p)];
        for (const Tuple& row : in[static_cast<size_t>(p)]) {
          SIMDB_ASSIGN_OR_RETURN(Value list, list_expr_->Eval(row));
          if (list.is_missing() || list.is_null()) continue;
          if (!list.is_list()) {
            return Status::TypeError("UNNEST expects a list, got " +
                                     std::string(adm::ValueTypeToString(
                                         list.type())));
          }
          int64_t pos = 1;
          for (const Value& item : list.AsList()) {
            Tuple extended = row;
            extended.push_back(item);
            if (with_position_) extended.push_back(Value::Int64(pos));
            rows.push_back(std::move(extended));
            ++pos;
          }
        }
        return Status::OK();
      }));
  return out;
}

Result<PartitionedRows> UnionAllOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  if (inputs.empty()) return Status::Internal("UNION-ALL needs inputs");
  size_t parts = inputs[0]->size();
  PartitionedRows out(parts);
  SIMDB_RETURN_IF_ERROR(RunPerPartition(
      ctx, static_cast<int>(parts), stats, [&](int p) -> Status {
        for (const PartitionedRows* in : inputs) {
          if (in->size() != parts) {
            return Status::Internal("UNION-ALL partition mismatch");
          }
          const Rows& rows = (*in)[static_cast<size_t>(p)];
          out[static_cast<size_t>(p)].insert(out[static_cast<size_t>(p)].end(),
                                             rows.begin(), rows.end());
        }
        return Status::OK();
      }));
  return out;
}

Result<PartitionedRows> RankAssignOp::Execute(
    ExecContext&, const std::vector<const PartitionedRows*>& inputs,
    OpStats*) {
  if (inputs.size() != 1) return Status::Internal("RANK-ASSIGN input");
  const PartitionedRows& in = *inputs[0];
  for (size_t p = 1; p < in.size(); ++p) {
    if (!in[p].empty()) {
      return Status::Internal(
          "RANK-ASSIGN requires a gathered (single-partition) input");
    }
  }
  PartitionedRows out(in.size());
  int64_t rank = start_;
  if (!in.empty()) {
    out[0].reserve(in[0].size());
    for (const Tuple& row : in[0]) {
      Tuple extended = row;
      extended.push_back(Value::Int64(rank++));
      out[0].push_back(std::move(extended));
    }
  }
  return out;
}

Result<PartitionedRows> LimitOp::Execute(
    ExecContext&, const std::vector<const PartitionedRows*>& inputs,
    OpStats*) {
  if (inputs.size() != 1) return Status::Internal("LIMIT input");
  const PartitionedRows& in = *inputs[0];
  PartitionedRows out(in.size());
  int64_t remaining = limit_;
  for (size_t p = 0; p < in.size() && remaining > 0; ++p) {
    for (const Tuple& row : in[p]) {
      if (remaining-- <= 0) break;
      out[p].push_back(row);
    }
  }
  return out;
}

}  // namespace simdb::hyracks
