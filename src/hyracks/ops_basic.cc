#include "hyracks/ops_basic.h"

#include <algorithm>

namespace simdb::hyracks {

using adm::Value;

namespace {

/// Scalar SELECT decision for one row: 1 keep, 0 drop, error on a
/// non-boolean non-missing/null predicate value. Shared by the tuple path
/// and the batch path's per-row fallback so their semantics cannot drift.
Result<int> SelectDecision(const ExprPtr& predicate, const Tuple& row) {
  SIMDB_ASSIGN_OR_RETURN(Value v, predicate->Eval(row));
  if (v.is_boolean() && v.AsBoolean()) return 1;
  if (!v.is_boolean() && !v.is_missing() && !v.is_null()) {
    return Status::TypeError("SELECT predicate must return boolean");
  }
  return 0;
}

size_t BatchCapacity(const ExecContext& ctx) {
  return ctx.batch_size > 0 ? static_cast<size_t>(ctx.batch_size) : 1;
}

}  // namespace

Result<Rows> SelectOp::ExecutePartition(ExecContext& ctx, int,
                                        const std::vector<const Rows*>& inputs) {
  const Rows& in = *inputs[0];
  BatchStats bs;
  Rows out;
  if (!ctx.batch_execution || !batch_.has_value()) {
    for (const Tuple& row : in) {
      SIMDB_ASSIGN_OR_RETURN(int keep, SelectDecision(predicate_, row));
      if (keep != 0) out.push_back(row);
    }
    bs.fallback_rows = in.size();
    bs.Emit(ctx);
    return out;
  }

  const SimBatchCall& call = *batch_;
  const size_t cap = BatchCapacity(ctx);
  TokenIdEncoder encoder;
  std::vector<uint32_t> enc_a, enc_b;
  SimIdBatch ids;
  SimCharBatch chars;
  std::vector<int8_t> verdict;  // 0 drop, 1 keep, 2 awaiting kernel
  for (size_t base = 0; base < in.size(); base += cap) {
    const size_t n = std::min(cap, in.size() - base);
    verdict.assign(n, 0);
    ids.Clear();
    chars.Clear();
    for (size_t r = 0; r < n; ++r) {
      const Tuple& row = in[base + r];
      // Arguments evaluate in CallExpr order so evaluation errors surface
      // exactly where the tuple path surfaces them; the threshold is a
      // literal and cannot error.
      SIMDB_ASSIGN_OR_RETURN(Value va, call.arg_a->Eval(row));
      SIMDB_ASSIGN_OR_RETURN(Value vb, call.arg_b->Eval(row));
      bool staged = false;
      if (call.kind == SimBatchCall::Kind::kJaccardCheck) {
        if (encoder.EncodePair(va, vb, &enc_a, &enc_b)) {
          ids.Push(static_cast<uint32_t>(r), enc_a, enc_b);
          staged = true;
        }
      } else if (va.is_string() && vb.is_string()) {
        chars.Push(static_cast<uint32_t>(r), va.AsString(), vb.AsString());
        staged = true;
      }
      if (staged) {
        verdict[r] = 2;
        ++bs.rows;
      } else {
        ++bs.fallback_rows;
        SIMDB_ASSIGN_OR_RETURN(int keep, SelectDecision(predicate_, row));
        verdict[r] = static_cast<int8_t>(keep);
      }
    }
    if (!ids.rows.empty()) {
      ++bs.batches;
      ids.out.resize(ids.size());
      simd::JaccardCheckPairs(ids.a_ids.data(), ids.a_offsets.data(),
                              ids.b_ids.data(), ids.b_offsets.data(),
                              ids.size(), call.threshold, ids.out.data(),
                              /*assume_unique=*/true);
      for (size_t i = 0; i < ids.size(); ++i) {
        verdict[ids.rows[i]] = ids.out[i] >= 0 ? 1 : 0;
      }
    }
    if (!chars.rows.empty()) {
      ++bs.batches;
      chars.out.resize(chars.size());
      simd::EditDistanceCheckPairs(
          chars.a_chars.data(), chars.a_offsets.data(), chars.b_chars.data(),
          chars.b_offsets.data(), chars.size(),
          static_cast<int>(call.threshold), chars.out.data());
      for (size_t i = 0; i < chars.size(); ++i) {
        verdict[chars.rows[i]] = chars.out[i] >= 0 ? 1 : 0;
      }
    }
    for (size_t r = 0; r < n; ++r) {
      if (verdict[r] == 1) out.push_back(in[base + r]);
    }
  }
  bs.Emit(ctx);
  return out;
}

std::string AssignOp::name() const {
  std::string out = "ASSIGN(";
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[i] + ":=" + exprs_[i]->ToString();
  }
  out += ")";
  return out;
}

Result<Rows> AssignOp::ExecutePartition(ExecContext& ctx, int,
                                        const std::vector<const Rows*>& inputs) {
  const Rows& in = *inputs[0];
  BatchStats bs;
  Rows out;
  out.reserve(in.size());
  if (!ctx.batch_execution || !batch_.has_value()) {
    for (const Tuple& row : in) {
      Tuple extended = row;
      // Evaluate against the growing tuple so later expressions may
      // reference the columns produced by earlier ones.
      for (const ExprPtr& e : exprs_) {
        SIMDB_ASSIGN_OR_RETURN(Value v, e->Eval(extended));
        extended.push_back(std::move(v));
      }
      out.push_back(std::move(extended));
    }
    bs.fallback_rows = in.size();
    bs.Emit(ctx);
    return out;
  }

  // Batch path: the last expression is similarity-jaccard(a, b). Earlier
  // columns evaluate per row as usual; encodable (a, b) pairs are staged
  // into a CSR batch whose kernel result fills the final column after each
  // chunk. Rows are appended in input order either way.
  const SimBatchCall& call = *batch_;
  const size_t cap = BatchCapacity(ctx);
  TokenIdEncoder encoder;
  std::vector<uint32_t> enc_a, enc_b;
  SimIdBatch ids;
  for (size_t base = 0; base < in.size(); base += cap) {
    const size_t n = std::min(cap, in.size() - base);
    ids.Clear();
    for (size_t r = 0; r < n; ++r) {
      Tuple extended = in[base + r];
      for (size_t e = 0; e + 1 < exprs_.size(); ++e) {
        SIMDB_ASSIGN_OR_RETURN(Value v, exprs_[e]->Eval(extended));
        extended.push_back(std::move(v));
      }
      // Same argument evaluation order as the tuple path's final CallExpr.
      SIMDB_ASSIGN_OR_RETURN(Value va, call.arg_a->Eval(extended));
      SIMDB_ASSIGN_OR_RETURN(Value vb, call.arg_b->Eval(extended));
      if (encoder.EncodePair(va, vb, &enc_a, &enc_b)) {
        ++bs.rows;
        ids.Push(static_cast<uint32_t>(out.size()), enc_a, enc_b);
        out.push_back(std::move(extended));  // final column filled below
      } else {
        ++bs.fallback_rows;
        SIMDB_ASSIGN_OR_RETURN(Value v, exprs_.back()->Eval(extended));
        extended.push_back(std::move(v));
        out.push_back(std::move(extended));
      }
    }
    if (!ids.rows.empty()) {
      ++bs.batches;
      ids.out.resize(ids.size());
      simd::JaccardEvalPairs(ids.a_ids.data(), ids.a_offsets.data(),
                             ids.b_ids.data(), ids.b_offsets.data(),
                             ids.size(), ids.out.data(),
                             /*assume_unique=*/true);
      for (size_t i = 0; i < ids.size(); ++i) {
        out[ids.rows[i]].push_back(Value::Double(ids.out[i]));
      }
    }
  }
  bs.Emit(ctx);
  return out;
}

Result<Rows> ProjectOp::ExecutePartition(
    ExecContext&, int, const std::vector<const Rows*>& inputs) {
  Rows out;
  out.reserve(inputs[0]->size());
  for (const Tuple& row : *inputs[0]) {
    Tuple projected;
    projected.reserve(keep_.size());
    for (int k : keep_) {
      if (k < 0 || static_cast<size_t>(k) >= row.size()) {
        return Status::Internal("PROJECT column out of range");
      }
      projected.push_back(row[static_cast<size_t>(k)]);
    }
    out.push_back(std::move(projected));
  }
  return out;
}

Result<Rows> SortOp::ExecutePartition(ExecContext&, int,
                                      const std::vector<const Rows*>& inputs) {
  Rows out = *inputs[0];  // copy, then sort in place
  std::stable_sort(out.begin(), out.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     for (const SortKey& k : keys_) {
                       int c = Value::Compare(a[static_cast<size_t>(k.column)],
                                              b[static_cast<size_t>(k.column)]);
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return out;
}

Result<Rows> UnnestOp::ExecutePartition(ExecContext&, int,
                                        const std::vector<const Rows*>& inputs) {
  Rows out;
  for (const Tuple& row : *inputs[0]) {
    SIMDB_ASSIGN_OR_RETURN(Value list, list_expr_->Eval(row));
    if (list.is_missing() || list.is_null()) continue;
    if (!list.is_list()) {
      return Status::TypeError(
          "UNNEST expects a list, got " +
          std::string(adm::ValueTypeToString(list.type())));
    }
    int64_t pos = 1;
    for (const Value& item : list.AsList()) {
      Tuple extended = row;
      extended.push_back(item);
      if (with_position_) extended.push_back(Value::Int64(pos));
      out.push_back(std::move(extended));
      ++pos;
    }
  }
  return out;
}

Result<Rows> UnionAllOp::ExecutePartition(
    ExecContext&, int, const std::vector<const Rows*>& inputs) {
  size_t total = 0;
  for (const Rows* in : inputs) total += in->size();
  Rows out;
  out.reserve(total);
  for (const Rows* in : inputs) {
    out.insert(out.end(), in->begin(), in->end());
  }
  return out;
}

Result<PartitionedRows> RankAssignOp::Execute(
    ExecContext&, const std::vector<const PartitionedRows*>& inputs,
    OpStats*) {
  if (inputs.size() != 1) return Status::Internal("RANK-ASSIGN input");
  const PartitionedRows& in = *inputs[0];
  for (size_t p = 1; p < in.size(); ++p) {
    if (!in[p].empty()) {
      return Status::Internal(
          "RANK-ASSIGN requires a gathered (single-partition) input");
    }
  }
  PartitionedRows out(in.size());
  int64_t rank = start_;
  if (!in.empty()) {
    out[0].reserve(in[0].size());
    for (const Tuple& row : in[0]) {
      Tuple extended = row;
      extended.push_back(Value::Int64(rank++));
      out[0].push_back(std::move(extended));
    }
  }
  return out;
}

Result<PartitionedRows> LimitOp::Execute(
    ExecContext&, const std::vector<const PartitionedRows*>& inputs,
    OpStats*) {
  if (inputs.size() != 1) return Status::Internal("LIMIT input");
  const PartitionedRows& in = *inputs[0];
  PartitionedRows out(in.size());
  int64_t remaining = limit_;
  for (size_t p = 0; p < in.size() && remaining > 0; ++p) {
    for (const Tuple& row : in[p]) {
      if (remaining-- <= 0) break;
      out[p].push_back(row);
    }
  }
  return out;
}

}  // namespace simdb::hyracks
