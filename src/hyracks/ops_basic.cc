#include "hyracks/ops_basic.h"

#include <algorithm>

namespace simdb::hyracks {

using adm::Value;

Result<Rows> SelectOp::ExecutePartition(ExecContext&, int,
                                        const std::vector<const Rows*>& inputs) {
  Rows out;
  for (const Tuple& row : *inputs[0]) {
    SIMDB_ASSIGN_OR_RETURN(Value v, predicate_->Eval(row));
    if (v.is_boolean() && v.AsBoolean()) {
      out.push_back(row);
    } else if (!v.is_boolean() && !v.is_missing() && !v.is_null()) {
      return Status::TypeError("SELECT predicate must return boolean");
    }
  }
  return out;
}

std::string AssignOp::name() const {
  std::string out = "ASSIGN(";
  for (size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += names_[i] + ":=" + exprs_[i]->ToString();
  }
  out += ")";
  return out;
}

Result<Rows> AssignOp::ExecutePartition(ExecContext&, int,
                                        const std::vector<const Rows*>& inputs) {
  Rows out;
  out.reserve(inputs[0]->size());
  for (const Tuple& row : *inputs[0]) {
    Tuple extended = row;
    // Evaluate against the growing tuple so later expressions may
    // reference the columns produced by earlier ones.
    for (const ExprPtr& e : exprs_) {
      SIMDB_ASSIGN_OR_RETURN(Value v, e->Eval(extended));
      extended.push_back(std::move(v));
    }
    out.push_back(std::move(extended));
  }
  return out;
}

Result<Rows> ProjectOp::ExecutePartition(
    ExecContext&, int, const std::vector<const Rows*>& inputs) {
  Rows out;
  out.reserve(inputs[0]->size());
  for (const Tuple& row : *inputs[0]) {
    Tuple projected;
    projected.reserve(keep_.size());
    for (int k : keep_) {
      if (k < 0 || static_cast<size_t>(k) >= row.size()) {
        return Status::Internal("PROJECT column out of range");
      }
      projected.push_back(row[static_cast<size_t>(k)]);
    }
    out.push_back(std::move(projected));
  }
  return out;
}

Result<Rows> SortOp::ExecutePartition(ExecContext&, int,
                                      const std::vector<const Rows*>& inputs) {
  Rows out = *inputs[0];  // copy, then sort in place
  std::stable_sort(out.begin(), out.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     for (const SortKey& k : keys_) {
                       int c = Value::Compare(a[static_cast<size_t>(k.column)],
                                              b[static_cast<size_t>(k.column)]);
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return out;
}

Result<Rows> UnnestOp::ExecutePartition(ExecContext&, int,
                                        const std::vector<const Rows*>& inputs) {
  Rows out;
  for (const Tuple& row : *inputs[0]) {
    SIMDB_ASSIGN_OR_RETURN(Value list, list_expr_->Eval(row));
    if (list.is_missing() || list.is_null()) continue;
    if (!list.is_list()) {
      return Status::TypeError(
          "UNNEST expects a list, got " +
          std::string(adm::ValueTypeToString(list.type())));
    }
    int64_t pos = 1;
    for (const Value& item : list.AsList()) {
      Tuple extended = row;
      extended.push_back(item);
      if (with_position_) extended.push_back(Value::Int64(pos));
      out.push_back(std::move(extended));
      ++pos;
    }
  }
  return out;
}

Result<Rows> UnionAllOp::ExecutePartition(
    ExecContext&, int, const std::vector<const Rows*>& inputs) {
  size_t total = 0;
  for (const Rows* in : inputs) total += in->size();
  Rows out;
  out.reserve(total);
  for (const Rows* in : inputs) {
    out.insert(out.end(), in->begin(), in->end());
  }
  return out;
}

Result<PartitionedRows> RankAssignOp::Execute(
    ExecContext&, const std::vector<const PartitionedRows*>& inputs,
    OpStats*) {
  if (inputs.size() != 1) return Status::Internal("RANK-ASSIGN input");
  const PartitionedRows& in = *inputs[0];
  for (size_t p = 1; p < in.size(); ++p) {
    if (!in[p].empty()) {
      return Status::Internal(
          "RANK-ASSIGN requires a gathered (single-partition) input");
    }
  }
  PartitionedRows out(in.size());
  int64_t rank = start_;
  if (!in.empty()) {
    out[0].reserve(in[0].size());
    for (const Tuple& row : in[0]) {
      Tuple extended = row;
      extended.push_back(Value::Int64(rank++));
      out[0].push_back(std::move(extended));
    }
  }
  return out;
}

Result<PartitionedRows> LimitOp::Execute(
    ExecContext&, const std::vector<const PartitionedRows*>& inputs,
    OpStats*) {
  if (inputs.size() != 1) return Status::Internal("LIMIT input");
  const PartitionedRows& in = *inputs[0];
  PartitionedRows out(in.size());
  int64_t remaining = limit_;
  for (size_t p = 0; p < in.size() && remaining > 0; ++p) {
    for (const Tuple& row : in[p]) {
      if (remaining-- <= 0) break;
      out[p].push_back(row);
    }
  }
  return out;
}

}  // namespace simdb::hyracks
