#include "hyracks/ops_exchange.h"

#include <algorithm>
#include <queue>

#include "common/stopwatch.h"
#include "hyracks/fragment.h"
#include "observability/trace.h"
#include "transport/transport.h"

namespace simdb::hyracks {

using adm::Value;

namespace {

uint64_t HashKeys(const Tuple& row, const std::vector<int>& key_columns) {
  uint64_t h = 0x5150;
  for (int c : key_columns) {
    uint64_t v = row[static_cast<size_t>(c)].Hash();
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

/// Accounts one tuple moving src->dst for the network model.
void AccountMove(const ExecContext& ctx, OpStats* stats, int src, int dst,
                 const Tuple& row) {
  if (stats == nullptr) return;
  uint64_t bytes = TupleBytes(row);
  if (ctx.topology.NodeOfPartition(src) == ctx.topology.NodeOfPartition(dst)) {
    stats->local_bytes += bytes;
  } else {
    stats->remote_bytes += bytes;
    ++stats->remote_transfers;
  }
}

/// Copies, or moves when the executor owns the input exclusively. A tuple is
/// taken only by the one destination it routes to, so concurrent builds
/// moving out of the same source partition touch disjoint rows.
Tuple TakeRow(const PartitionedRows& in, PartitionedRows* steal, size_t src,
              size_t i) {
  if (steal != nullptr) return std::move((*steal)[src][i]);
  return in[src][i];
}

}  // namespace

Result<ExchangeOperator::Routing> ExchangeOperator::Route(
    ExecContext&, const PartitionedRows&) {
  return Routing{};
}

Result<Rows> BuildAndShipDestination(ExecContext& ctx, ExchangeOperator& op,
                                     int dst, const PartitionedRows& in,
                                     const ExchangeOperator::Routing& routing,
                                     PartitionedRows* steal, OpStats* stats) {
  // Remote-first: when the transport executes fragments, the destination is
  // *computed* in the worker that owns its node and only the result crosses
  // back — the parent never materializes it. A handled remote build consumed
  // no tuples from `steal` (its slice is disjoint from every other
  // destination's), so concurrent stealing builds are unaffected. Falls
  // through to the local build + echo-ship path when remote execution is
  // off, the operator has no closure, the slice is empty, or the fragment
  // was refused as cancelled.
  if (ctx.transport != nullptr && ctx.transport->remote_execution() &&
      (ctx.cancel == nullptr || ctx.cancel->Check().ok())) {
    Rows remote_rows;
    bool handled = false;
    SIMDB_RETURN_IF_ERROR(fragment::TryBuildRemote(
        ctx, op, dst, in, routing, stats, &remote_rows, &handled));
    if (handled) return remote_rows;
  }
  SIMDB_ASSIGN_OR_RETURN(Rows rows,
                         op.BuildDestination(ctx, dst, in, routing, steal,
                                             stats));
  transport::Transport* t = ctx.transport;
  if (t != nullptr &&
      t->ShouldShip(rows.size(), stats != nullptr ? stats->remote_bytes : 0) &&
      (ctx.cancel == nullptr || ctx.cancel->Check().ok())) {
    double seconds = 0;
    SIMDB_RETURN_IF_ERROR(
        t->Ship(ctx.topology.NodeOfPartition(dst), &rows, &seconds));
    if (stats != nullptr) stats->transport_seconds += seconds;
  }
  return rows;
}

Result<PartitionedRows> ExchangeOperator::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  return RunExchange(ctx, *this, inputs, /*steal=*/nullptr, stats);
}

Result<PartitionedRows> RunExchange(
    ExecContext& ctx, ExchangeOperator& op,
    const std::vector<const PartitionedRows*>& inputs, PartitionedRows* steal,
    OpStats* stats) {
  if (inputs.size() != 1) {
    return Status::Internal(op.name() + " expects exactly one input");
  }
  const PartitionedRows& in = *inputs[0];
  int parts = static_cast<int>(in.size());
  if (parts == 0) return PartitionedRows();

  const bool profiling = ctx.trace != nullptr;
  const int node_id = stats != nullptr ? stats->node_id : -1;
  const int stage = stats != nullptr ? stats->stage : 0;
  Stopwatch route_sw;
  int64_t route_start = profiling ? ctx.trace->NowMicros() : 0;
  SIMDB_ASSIGN_OR_RETURN(ExchangeOperator::Routing routing,
                         op.Route(ctx, in));
  double route_seconds = route_sw.ElapsedSeconds();
  if (profiling) {
    obs::TraceEvent ev;
    ev.category = "exchange";
    ev.name = op.name() + ":route";
    ev.start_us = route_start;
    ev.dur_us = ctx.trace->NowMicros() - route_start;
    ev.args = {{"node", node_id}, {"stage", stage}};
    ctx.trace->Record(std::move(ev));
  }

  // Destination builds run in parallel; each accounts its own traffic into a
  // private sink. Merging in destination order keeps the counters identical
  // under any pool size.
  PartitionedRows out(static_cast<size_t>(parts));
  std::vector<OpStats> dest_stats(static_cast<size_t>(parts));
  // Profiling gives every destination task a private counter sink (remote
  // fragment dispatch emits exec.remote.* through it), merged in destination
  // order below; the off path is untouched.
  std::vector<OpCounterSink> sinks;
  if (profiling) sinks.resize(static_cast<size_t>(parts));
  SIMDB_RETURN_IF_ERROR(
      RunPerPartition(ctx, parts, stats, [&](int dst) -> Status {
        ExecContext task_ctx = ctx;
        if (profiling) task_ctx.counters = &sinks[static_cast<size_t>(dst)];
        int64_t start = profiling ? ctx.trace->NowMicros() : 0;
        SIMDB_ASSIGN_OR_RETURN(
            out[static_cast<size_t>(dst)],
            BuildAndShipDestination(task_ctx, op, dst, in, routing, steal,
                                    &dest_stats[static_cast<size_t>(dst)]));
        if (profiling) {
          obs::TraceEvent ev;
          ev.category = "exchange";
          ev.name = op.name() + ":build";
          ev.start_us = start;
          ev.dur_us = ctx.trace->NowMicros() - start;
          ev.pid = ctx.topology.NodeOfPartition(dst);
          ev.tid = dst % ctx.topology.partitions_per_node;
          ev.args = {
              {"node", node_id},
              {"partition", dst},
              {"stage", stage},
              {"rows",
               static_cast<int64_t>(out[static_cast<size_t>(dst)].size())}};
          ctx.trace->Record(std::move(ev));
        }
        return Status::OK();
      }));
  if (stats != nullptr) {
    if (profiling) {
      for (const OpCounterSink& sink : sinks) MergeCounterSink(*stats, sink);
    }
    for (int dst = 0; dst < parts; ++dst) {
      const OpStats& d = dest_stats[static_cast<size_t>(dst)];
      stats->local_bytes += d.local_bytes;
      stats->remote_bytes += d.remote_bytes;
      stats->remote_transfers += d.remote_transfers;
      stats->transport_seconds += d.transport_seconds;
      stats->remote_compute_seconds += d.remote_compute_seconds;
      stats->remote_builds += d.remote_builds;
    }
    if (ctx.stats != nullptr) {
      // Stage-sequential task accounting counts whole nodes; remote builds
      // are still counted per destination so both executors agree on
      // tasks_remote.
      ctx.stats->tasks_remote += stats->remote_builds;
    }
    // Routing runs over the sources once; spread its cost evenly the way the
    // cluster would (each source partition routes its own rows). Implicit-
    // routing exchanges (broadcast, gather, merge-gather) computed no per-row
    // destinations, so their idle destinations are not charged: a
    // merge-gather's whole merge belongs to the destination-0 worker that
    // steals the tuples, never to the victims it steals from.
    if (!routing.destinations.empty()) {
      double spread = route_seconds / parts;
      for (double& s : stats->partition_seconds) s += spread;
    }
  }
  return out;
}

Result<ExchangeOperator::Routing> HashExchangeOp::Route(
    ExecContext&, const PartitionedRows& in) {
  size_t parts = in.size();
  Routing routing;
  routing.destinations.resize(parts);
  for (size_t src = 0; src < parts; ++src) {
    std::vector<int>& dsts = routing.destinations[src];
    dsts.reserve(in[src].size());
    for (const Tuple& row : in[src]) {
      for (int c : key_columns_) {
        if (c < 0 || static_cast<size_t>(c) >= row.size()) {
          return Status::Internal("HASH-EXCHANGE key column out of range");
        }
      }
      dsts.push_back(
          static_cast<int>(HashKeys(row, key_columns_) % parts));
    }
  }
  return routing;
}

Result<Rows> HashExchangeOp::BuildDestination(ExecContext& ctx, int dst,
                                              const PartitionedRows& in,
                                              const Routing& routing,
                                              PartitionedRows* steal,
                                              OpStats* stats) {
  size_t mine = 0;
  for (size_t src = 0; src < in.size(); ++src) {
    for (int d : routing.destinations[src]) mine += (d == dst);
  }
  Rows out;
  out.reserve(mine);
  for (size_t src = 0; src < in.size(); ++src) {
    const std::vector<int>& dsts = routing.destinations[src];
    for (size_t i = 0; i < dsts.size(); ++i) {
      if (dsts[i] != dst) continue;
      AccountMove(ctx, stats, static_cast<int>(src), dst, in[src][i]);
      out.push_back(TakeRow(in, steal, src, i));
    }
  }
  return out;
}

Result<Rows> BroadcastExchangeOp::BuildDestination(ExecContext& ctx, int dst,
                                                   const PartitionedRows& in,
                                                   const Routing&,
                                                   PartitionedRows*,
                                                   OpStats* stats) {
  // Every destination needs its own copy — replication cannot move. The
  // de-copy win here is the exact reserve and one destination per task.
  size_t total = 0;
  for (const Rows& rows : in) total += rows.size();
  Rows out;
  out.reserve(total);
  for (size_t src = 0; src < in.size(); ++src) {
    for (const Tuple& row : in[src]) {
      AccountMove(ctx, stats, static_cast<int>(src), dst, row);
      out.push_back(row);
    }
  }
  return out;
}

Result<Rows> GatherOp::BuildDestination(ExecContext& ctx, int dst,
                                        const PartitionedRows& in,
                                        const Routing&, PartitionedRows* steal,
                                        OpStats* stats) {
  if (dst != 0) return Rows();
  size_t total = 0;
  for (const Rows& rows : in) total += rows.size();
  Rows out;
  out.reserve(total);
  for (size_t src = 0; src < in.size(); ++src) {
    for (size_t i = 0; i < in[src].size(); ++i) {
      AccountMove(ctx, stats, static_cast<int>(src), 0, in[src][i]);
      out.push_back(TakeRow(in, steal, src, i));
    }
  }
  return out;
}

Result<Rows> MergeGatherOp::BuildDestination(ExecContext& ctx, int dst,
                                             const PartitionedRows& in,
                                             const Routing&,
                                             PartitionedRows* steal,
                                             OpStats* stats) {
  if (dst != 0) return Rows();
  // -1 / 0 / 1 over the sort keys (ascending flags applied).
  auto compare = [this](const Tuple& a, const Tuple& b) {
    for (const SortKey& k : keys_) {
      int c = Value::Compare(a[static_cast<size_t>(k.column)],
                             b[static_cast<size_t>(k.column)]);
      if (c != 0) return k.ascending ? c : -c;
    }
    return 0;
  };
  // K-way binary-heap merge. Ties break on the partition index so the output
  // is identical to a sequential first-wins scan (and stable across runs).
  struct Head {
    size_t part;
    size_t pos;
  };
  auto after = [&](const Head& a, const Head& b) {
    int c = compare(in[a.part][a.pos], in[b.part][b.pos]);
    if (c != 0) return c > 0;
    return a.part > b.part;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(after)> heap(after);
  size_t total = 0;
  for (size_t p = 0; p < in.size(); ++p) {
    total += in[p].size();
    if (!in[p].empty()) heap.push({p, 0});
  }
  Rows out;
  out.reserve(total);
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    AccountMove(ctx, stats, static_cast<int>(head.part), 0,
                in[head.part][head.pos]);
    out.push_back(TakeRow(in, steal, head.part, head.pos));
    if (head.pos + 1 < in[head.part].size()) {
      heap.push({head.part, head.pos + 1});
    }
  }
  return out;
}

}  // namespace simdb::hyracks
