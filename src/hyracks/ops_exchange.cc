#include "hyracks/ops_exchange.h"

#include <algorithm>

namespace simdb::hyracks {

using adm::Value;

namespace {

uint64_t HashKeys(const Tuple& row, const std::vector<int>& key_columns) {
  uint64_t h = 0x5150;
  for (int c : key_columns) {
    uint64_t v = row[static_cast<size_t>(c)].Hash();
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

/// Accounts one tuple moving src->dst for the network model.
void AccountMove(const ExecContext& ctx, OpStats* stats, int src, int dst,
                 const Tuple& row) {
  if (stats == nullptr) return;
  uint64_t bytes = TupleBytes(row);
  if (ctx.topology.NodeOfPartition(src) == ctx.topology.NodeOfPartition(dst)) {
    stats->local_bytes += bytes;
  } else {
    stats->remote_bytes += bytes;
    ++stats->remote_transfers;
  }
}

}  // namespace

Result<PartitionedRows> HashExchangeOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  if (inputs.size() != 1) return Status::Internal("HASH-EXCHANGE input");
  const PartitionedRows& in = *inputs[0];
  size_t parts = in.size();
  PartitionedRows out(parts);
  for (size_t src = 0; src < parts; ++src) {
    for (const Tuple& row : in[src]) {
      for (int c : key_columns_) {
        if (c < 0 || static_cast<size_t>(c) >= row.size()) {
          return Status::Internal("HASH-EXCHANGE key column out of range");
        }
      }
      size_t dst = HashKeys(row, key_columns_) % parts;
      AccountMove(ctx, stats, static_cast<int>(src), static_cast<int>(dst),
                  row);
      out[dst].push_back(row);
    }
  }
  return out;
}

Result<PartitionedRows> BroadcastExchangeOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  if (inputs.size() != 1) return Status::Internal("BROADCAST input");
  const PartitionedRows& in = *inputs[0];
  size_t parts = in.size();
  PartitionedRows out(parts);
  for (size_t src = 0; src < parts; ++src) {
    for (const Tuple& row : in[src]) {
      for (size_t dst = 0; dst < parts; ++dst) {
        AccountMove(ctx, stats, static_cast<int>(src), static_cast<int>(dst),
                    row);
        out[dst].push_back(row);
      }
    }
  }
  return out;
}

Result<PartitionedRows> GatherOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  if (inputs.size() != 1) return Status::Internal("GATHER input");
  const PartitionedRows& in = *inputs[0];
  PartitionedRows out(in.size());
  for (size_t src = 0; src < in.size(); ++src) {
    for (const Tuple& row : in[src]) {
      AccountMove(ctx, stats, static_cast<int>(src), 0, row);
      out[0].push_back(row);
    }
  }
  return out;
}

Result<PartitionedRows> MergeGatherOp::Execute(
    ExecContext& ctx, const std::vector<const PartitionedRows*>& inputs,
    OpStats* stats) {
  if (inputs.size() != 1) return Status::Internal("MERGE-GATHER input");
  const PartitionedRows& in = *inputs[0];
  PartitionedRows out(in.size());
  // Account traffic.
  for (size_t src = 0; src < in.size(); ++src) {
    for (const Tuple& row : in[src]) {
      AccountMove(ctx, stats, static_cast<int>(src), 0, row);
    }
  }
  // K-way merge of the sorted partitions.
  auto less = [this](const Tuple& a, const Tuple& b) {
    for (const SortKey& k : keys_) {
      int c = Value::Compare(a[static_cast<size_t>(k.column)],
                             b[static_cast<size_t>(k.column)]);
      if (c != 0) return k.ascending ? c < 0 : c > 0;
    }
    return false;
  };
  std::vector<size_t> pos(in.size(), 0);
  size_t total = 0;
  for (const Rows& rows : in) total += rows.size();
  out[0].reserve(total);
  for (;;) {
    int best = -1;
    for (size_t p = 0; p < in.size(); ++p) {
      if (pos[p] >= in[p].size()) continue;
      if (best < 0 || less(in[p][pos[p]], in[static_cast<size_t>(best)]
                                            [pos[static_cast<size_t>(best)]])) {
        best = static_cast<int>(p);
      }
    }
    if (best < 0) break;
    out[0].push_back(in[static_cast<size_t>(best)][pos[static_cast<size_t>(best)]]);
    ++pos[static_cast<size_t>(best)];
  }
  return out;
}

}  // namespace simdb::hyracks
