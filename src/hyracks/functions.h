#ifndef SIMDB_HYRACKS_FUNCTIONS_H_
#define SIMDB_HYRACKS_FUNCTIONS_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "adm/value.h"
#include "common/result.h"

namespace simdb::hyracks {

/// A scalar builtin (or user-registered) function evaluated row-at-a-time by
/// CallExpr. Arity is validated at plan-compile time.
struct FunctionDef {
  std::string name;
  int min_args = 0;
  int max_args = 0;  // inclusive; use kVarArgs for unbounded
  std::function<Result<adm::Value>(const std::vector<adm::Value>&)> fn;

  static constexpr int kVarArgs = 1 << 20;
};

/// Registry of scalar functions available to queries. Pre-populated with the
/// engine builtins (comparisons, arithmetic, tokenizers, similarity
/// functions, prefix helpers). Users may Register additional functions (the
/// paper's external-UDF path).
class FunctionRegistry {
 public:
  static FunctionRegistry& Global();

  void Register(FunctionDef def);
  /// nullptr when unknown.
  const FunctionDef* Find(std::string_view name) const;

  std::vector<std::string> Names() const;

 private:
  FunctionRegistry();

  std::map<std::string, FunctionDef, std::less<>> functions_;
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_FUNCTIONS_H_
