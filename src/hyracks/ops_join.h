#ifndef SIMDB_HYRACKS_OPS_JOIN_H_
#define SIMDB_HYRACKS_OPS_JOIN_H_

#include <string>
#include <vector>

#include "hyracks/exec.h"
#include "hyracks/expr.h"

namespace simdb::hyracks {

/// Local per-partition equi hash join. Inputs must already be co-partitioned
/// on the join keys (via HashExchange) or one side broadcast. Output tuples
/// are left columns followed by right columns. `residual` (over the combined
/// tuple) filters matches when set; MISSING/NULL keys never match.
class HashJoinOp : public PartitionOperator {
 public:
  HashJoinOp(std::vector<int> left_keys, std::vector<int> right_keys,
             ExprPtr residual = nullptr)
      : left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)) {}
  std::string name() const override { return "HASH-JOIN"; }
  int num_inputs() const override { return 2; }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const std::vector<int>& left_keys() const { return left_keys_; }
  const std::vector<int>& right_keys() const { return right_keys_; }
  const ExprPtr& residual() const { return residual_; }

 private:
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  ExprPtr residual_;
};

/// Local per-partition nested-loop theta join: emits left×right pairs where
/// `predicate` (over the combined tuple) holds. Broadcast one side first for
/// a parallel NL join.
class NestedLoopJoinOp : public PartitionOperator {
 public:
  explicit NestedLoopJoinOp(ExprPtr predicate)
      : predicate_(std::move(predicate)) {}
  std::string name() const override {
    return "NL-JOIN(" + predicate_->ToString() + ")";
  }
  int num_inputs() const override { return 2; }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const ExprPtr& predicate() const { return predicate_; }

 private:
  ExprPtr predicate_;
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_OPS_JOIN_H_
