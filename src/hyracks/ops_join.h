#ifndef SIMDB_HYRACKS_OPS_JOIN_H_
#define SIMDB_HYRACKS_OPS_JOIN_H_

#include <climits>
#include <string>
#include <vector>

#include "hyracks/batch.h"
#include "hyracks/exec.h"
#include "hyracks/expr.h"

namespace simdb::hyracks {

/// Local per-partition equi hash join. Inputs must already be co-partitioned
/// on the join keys (via HashExchange) or one side broadcast. Output tuples
/// are left columns followed by right columns. `residual` (over the combined
/// tuple) filters matches when set; MISSING/NULL keys never match.
class HashJoinOp : public PartitionOperator {
 public:
  HashJoinOp(std::vector<int> left_keys, std::vector<int> right_keys,
             ExprPtr residual = nullptr)
      : left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)) {}
  std::string name() const override { return "HASH-JOIN"; }
  int num_inputs() const override { return 2; }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const std::vector<int>& left_keys() const { return left_keys_; }
  const std::vector<int>& right_keys() const { return right_keys_; }
  const ExprPtr& residual() const { return residual_; }

 private:
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  ExprPtr residual_;
};

/// Local per-partition nested-loop theta join: emits left×right pairs where
/// `predicate` (over the combined tuple) holds. Broadcast one side first for
/// a parallel NL join.
///
/// When the predicate is a recognized similarity check whose first argument
/// reads only left columns and second argument only right columns, the batch
/// path encodes/tokenizes each side once (instead of per pair) and verifies
/// a whole right batch per left row through the SIMD kernels; pairs the
/// encoder cannot handle fall back to the combined-tuple evaluator.
class NestedLoopJoinOp : public PartitionOperator {
 public:
  explicit NestedLoopJoinOp(ExprPtr predicate)
      : predicate_(std::move(predicate)), batch_(MatchSimCheckCall(predicate_)) {
    if (batch_.has_value()) {
      sides_pure_ = ColumnRange(batch_->arg_a.get(), &a_min_, &a_max_) &&
                    ColumnRange(batch_->arg_b.get(), &b_min_, &b_max_);
    }
  }
  std::string name() const override {
    return "NL-JOIN(" + predicate_->ToString() + ")";
  }
  int num_inputs() const override { return 2; }
  Result<Rows> ExecutePartition(ExecContext& ctx, int p,
                                const std::vector<const Rows*>& inputs)
      override;
  const ExprPtr& predicate() const { return predicate_; }

 private:
  ExprPtr predicate_;
  std::optional<SimBatchCall> batch_;
  bool sides_pure_ = false;
  int a_min_ = INT_MAX, a_max_ = -1;
  int b_min_ = INT_MAX, b_max_ = -1;
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_OPS_JOIN_H_
