#ifndef SIMDB_HYRACKS_BATCH_H_
#define SIMDB_HYRACKS_BATCH_H_

// Columnar batch execution support for the hot similarity operators.
//
// The batch path detects a vectorizable similarity call at plan-build time
// (MatchSimCheckCall / MatchSimEvalCall), encodes token lists into dense
// occurrence-distinct uint32 ids (TokenIdEncoder), stages up to
// ExecContext::batch_size rows into CSR scratch batches (SimIdBatch /
// SimCharBatch with a selection vector of source-row positions), and runs
// the runtime-dispatched simd:: kernels over the whole batch. Rows the
// encoder cannot handle fall back to the tuple evaluator one at a time —
// in source-row order, so evaluation errors surface exactly where the
// tuple path surfaces them. Both paths are answer-identical (checked by
// the batch differential fuzz seeds).

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "adm/value.h"
#include "hyracks/exec.h"
#include "hyracks/expr.h"

namespace simdb::hyracks {

/// Counters for the vectorized path of a batch-capable operator. The full
/// exec.batch.* trio is emitted (zeros included) whenever profiling is on,
/// so EXPLAIN PROFILE deterministically shows which operators ran
/// vectorized and which fell back.
struct BatchStats {
  uint64_t rows = 0;       // rows (pairs, for joins) through the kernels
  uint64_t batches = 0;    // kernel batch flushes
  uint64_t fallback_rows = 0;  // rows evaluated tuple-at-a-time

  void Emit(ExecContext& ctx) const {
    if (ctx.counters == nullptr) return;
    CountOp(ctx, "exec.batch.rows", rows);
    CountOp(ctx, "exec.batch.batches", batches);
    CountOp(ctx, "exec.batch.fallback_rows", fallback_rows);
  }
};

/// A similarity call the batch path can vectorize.
struct SimBatchCall {
  enum class Kind {
    kJaccardCheck,       // similarity-jaccard-check(a, b, literal-delta)
    kEditDistanceCheck,  // edit-distance-check(a, b, literal-k)
    kJaccardEval,        // similarity-jaccard(a, b)
  };
  Kind kind;
  ExprPtr arg_a;
  ExprPtr arg_b;
  double threshold = 0.0;  // delta (Jaccard) or k (edit distance)
};

/// Matches the verification predicates the optimizer emits for SELECT and
/// NL-JOIN: similarity-jaccard-check / edit-distance-check with a numeric
/// literal threshold.
std::optional<SimBatchCall> MatchSimCheckCall(const ExprPtr& expr);

/// Matches the similarity-jaccard(a, b) ASSIGN expression (the three-stage
/// join's verify column).
std::optional<SimBatchCall> MatchSimEvalCall(const ExprPtr& expr);

/// Accumulates the [min, max] column-reference range of `expr` into
/// *min_col / *max_col. Returns false for expression shapes it does not
/// know (conservative: the caller must not assume side-purity then).
bool ColumnRange(const Expr* expr, int* min_col, int* max_col);

/// Encodes token-list values into sorted dense uint32 id lists such that
/// multiset intersection/union sizes are preserved exactly: the k-th
/// occurrence of a token within one list maps to its own id, consistently
/// across every list this encoder sees, so the unique-id SIMD intersection
/// equals the multiset merge of the original tokens. One encoder instance is
/// local to one operator invocation (ids need not be stable across
/// partitions).
class TokenIdEncoder {
 public:
  /// Pair form mirroring CheckJaccard's dispatch order exactly: both sides
  /// all-strings => string encoding; else both sides all-int64 => int64
  /// encoding; else false (caller falls back to the tuple evaluator).
  bool EncodePair(const adm::Value& a, const adm::Value& b,
                  std::vector<uint32_t>* out_a, std::vector<uint32_t>* out_b);

  /// Single-value form for join sides encoded independently: all-strings
  /// lists use the string id space, all-int64 lists the int64 id space.
  /// Cross-typed pairs then intersect to zero in id space, matching the
  /// boxed-value comparison of the tuple path.
  bool EncodeValue(const adm::Value& v, std::vector<uint32_t>* out);

 private:
  struct Occ {
    uint32_t first_id = 0;
    std::vector<uint32_t> more;  // ids for occurrences 2, 3, ...
    uint32_t epoch = 0;
    uint32_t occ = 0;
  };

  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  uint32_t IdFor(Occ& o);
  void EncodeStrings(const adm::Value& v, std::vector<uint32_t>* out);
  void EncodeInts(const adm::Value& v, std::vector<uint32_t>* out);

  std::unordered_map<std::string, Occ, SvHash, SvEq> str_ids_;
  std::unordered_map<int64_t, Occ> int_ids_;
  uint32_t next_id_ = 0;
  uint32_t epoch_ = 0;
};

/// Columnar scratch batch for Jaccard pairs: two CSR id columns plus the
/// selection vector of source-row positions awaiting a kernel verdict.
struct SimIdBatch {
  std::vector<uint32_t> a_ids, b_ids;
  std::vector<size_t> a_offsets{0}, b_offsets{0};
  std::vector<uint32_t> rows;  // selection vector
  std::vector<double> out;

  size_t size() const { return rows.size(); }
  void Clear() {
    a_ids.clear();
    b_ids.clear();
    a_offsets.assign(1, 0);
    b_offsets.assign(1, 0);
    rows.clear();
  }
  void Push(uint32_t row, const std::vector<uint32_t>& a,
            const std::vector<uint32_t>& b) {
    a_ids.insert(a_ids.end(), a.begin(), a.end());
    b_ids.insert(b_ids.end(), b.begin(), b.end());
    a_offsets.push_back(a_ids.size());
    b_offsets.push_back(b_ids.size());
    rows.push_back(row);
  }
};

/// Columnar scratch batch for edit-distance pairs: two CSR char columns
/// plus the selection vector.
struct SimCharBatch {
  std::vector<char> a_chars, b_chars;
  std::vector<size_t> a_offsets{0}, b_offsets{0};
  std::vector<uint32_t> rows;
  std::vector<int> out;

  size_t size() const { return rows.size(); }
  void Clear() {
    a_chars.clear();
    b_chars.clear();
    a_offsets.assign(1, 0);
    b_offsets.assign(1, 0);
    rows.clear();
  }
  void Push(uint32_t row, const std::string& a, const std::string& b) {
    a_chars.insert(a_chars.end(), a.begin(), a.end());
    b_chars.insert(b_chars.end(), b.begin(), b.end());
    a_offsets.push_back(a_chars.size());
    b_offsets.push_back(b_chars.size());
    rows.push_back(row);
  }
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_BATCH_H_
