#ifndef SIMDB_HYRACKS_SCHEDULER_H_
#define SIMDB_HYRACKS_SCHEDULER_H_

#include "hyracks/exec.h"

namespace simdb::hyracks {

/// Dependency-scheduled task-graph executor.
///
/// The job DAG of operators is expanded into a finer task graph:
///   - a partition-local node becomes one task per partition, depending only
///     on the same partition of each input — a partition pipelines through a
///     chain of local operators without waiting for its siblings;
///   - an exchange becomes one routing task (runs once, after every input
///     partition) plus one build task per destination partition, all builds
///     running in parallel;
///   - any other operator (RANK-ASSIGN, LIMIT, external subclasses) becomes a
///     single barrier task over its fully materialized inputs.
///
/// Ready tasks are submitted to the context's thread pool; intermediate
/// partitions are released as soon as their per-partition reference count
/// drops to zero. When no pool is available (or when invoked from a pool
/// worker) the graph runs inline in deterministic topological order.
///
/// Failure semantics match the stage-sequential executor byte for byte under
/// any interleaving: every runnable task completes (tasks downstream of a
/// failure are skipped, never aborted mid-flight), then the failure of the
/// lowest node id — and within it the lowest partition — is reported.
class Scheduler {
 public:
  static Result<PartitionedRows> Run(const Job& job, ExecContext& ctx);

  /// The tuple-steal plan Run will use: steals[i] is true iff node i is an
  /// exchange whose single input has exactly one consumer edge. Exposed so
  /// the DAG verifier can check steal legality against the same decision the
  /// scheduler executes.
  static std::vector<bool> PlannedSteals(const Job& job);
};

}  // namespace simdb::hyracks

#endif  // SIMDB_HYRACKS_SCHEDULER_H_
