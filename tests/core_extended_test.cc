#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/query_processor.h"
#include "core/three_stage.h"
#include "storage/file_util.h"

namespace simdb::core {
namespace {

using adm::Value;

class CoreExtendedTest : public ::testing::Test {
 protected:
  CoreExtendedTest() {
    static int counter = 0;
    dir_ = (std::filesystem::temp_directory_path() /
            ("simdb_corex_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    EngineOptions options;
    options.data_dir = dir_;
    options.topology = {2, 2};
    options.num_threads = 2;
    engine_ = std::make_unique<QueryProcessor>(options);
  }
  ~CoreExtendedTest() override { storage::RemoveAllBestEffort(dir_); }

  void Load(const std::string& dataset,
            const std::vector<std::pair<std::string, std::string>>& rows) {
    ASSERT_TRUE(
        engine_->Execute("create dataset " + dataset + " primary key id;")
            .ok());
    int64_t id = 1;
    for (const auto& [name, text] : rows) {
      ASSERT_TRUE(engine_
                      ->Insert(dataset,
                               Value::MakeObject(
                                   {{"id", Value::Int64(id++)},
                                    {"name", Value::String(name)},
                                    {"text", Value::String(text)}}))
                      .ok());
    }
  }

  int64_t RunCount(const std::string& aql) {
    QueryResult result;
    Status s = engine_->Execute(aql, &result);
    EXPECT_TRUE(s.ok()) << s.ToString() << "\nquery: " << aql;
    last_ = result;
    if (result.rows.size() != 1 || !result.rows[0].is_int64()) return -1;
    return result.rows[0].AsInt64();
  }

  bool RuleFired(const std::string& name) {
    return std::find(last_.fired_rules.begin(), last_.fired_rules.end(),
                     name) != last_.fired_rules.end();
  }

  std::string dir_;
  std::unique_ptr<QueryProcessor> engine_;
  QueryResult last_;
};

// ---------- cross-dataset three-stage join (union token order) ----------

TEST_F(CoreExtendedTest, CrossDatasetThreeStageMatchesNl) {
  Load("Left", {{"a", "red apple pie"},
                {"b", "green apple pie"},
                {"c", "blue sky high"},
                {"d", ""}});
  Load("Right", {{"x", "red apple pie"},
                 {"y", "totally different words here"},
                 {"z", "green apple tart"},
                 {"w", ""}});
  std::string query =
      "count(for $l in dataset Left for $r in dataset Right "
      "where similarity-jaccard(word-tokens($l.text), "
      "word-tokens($r.text)) >= 0.5 return {'l': $l.id, 'r': $r.id})";
  int64_t three_stage = RunCount(query);
  EXPECT_TRUE(RuleFired("three-stage-similarity-join"));
  engine_->opt_context().enable_three_stage_join = false;
  int64_t nested = RunCount(query);
  EXPECT_FALSE(RuleFired("three-stage-similarity-join"));
  EXPECT_EQ(three_stage, nested);
  EXPECT_GE(three_stage, 2);  // at least (a,x) and the apple-pie overlaps
}

TEST_F(CoreExtendedTest, FilteredSidesStillAgree) {
  Load("Docs", {{"a", "one two three"},
                {"b", "one two three"},
                {"c", "one two four"},
                {"d", "five six seven"},
                {"e", "one two three"}});
  // Different filters on the two sides force the union-based token order.
  std::string query =
      "count(for $l in dataset Docs for $r in dataset Docs "
      "where similarity-jaccard(word-tokens($l.text), "
      "word-tokens($r.text)) >= 0.6 and $l.id <= 3 and $r.id >= 2 "
      "return {'l': $l.id, 'r': $r.id})";
  int64_t three_stage = RunCount(query);
  engine_->opt_context().enable_three_stage_join = false;
  int64_t nested = RunCount(query);
  EXPECT_EQ(three_stage, nested);
}

// ---------- contains() join through the n-gram index ----------

TEST_F(CoreExtendedTest, ContainsJoinIndexMatchesNl) {
  Load("Serials", {{"KX750-A11", "p1"},
                   {"KX750-B20", "p2"},
                   {"QM300-C05", "p3"},
                   {"X7", "p4"}});
  Load("Fragments", {{"750", "f1"}, {"300-C", "f2"}, {"Q", "f3"}});
  ASSERT_TRUE(engine_
                  ->Execute("create index six on Serials(name) type ngram(2);")
                  .ok());
  std::string query =
      "count(for $f in dataset Fragments for $s in dataset Serials "
      "where contains($s.name, $f.name) return {'f': $f.id, 's': $s.id})";
  int64_t indexed = RunCount(query);
  EXPECT_TRUE(RuleFired("introduce-similarity-index-join"));
  engine_->opt_context().enable_index_join = false;
  int64_t nested = RunCount(query);
  engine_->opt_context().enable_index_join = true;
  // "Q" is shorter than the gram length -> runtime corner-case path.
  EXPECT_EQ(indexed, nested);
  EXPECT_EQ(indexed, 2 + 1 + 1);  // 750 in two serials, 300-C in one, Q in one
}

// ---------- exact-match via the secondary B+-tree ----------

TEST_F(CoreExtendedTest, ExactMatchSelectionUsesBtree) {
  Load("Users", {{"maria", "t"}, {"james", "t"}, {"maria", "u"}});
  ASSERT_TRUE(
      engine_->Execute("create index nbt on Users(name) type btree;").ok());
  int64_t count = RunCount(
      "count(for $u in dataset Users where $u.name = 'maria' return $u)");
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(RuleFired("introduce-similarity-select-index"));
  std::string plan = last_.logical_plan;
  EXPECT_NE(plan.find("BTREE-SEARCH"), std::string::npos);
}

// ---------- dice / cosine and the sugar operator ----------

TEST_F(CoreExtendedTest, DiceAndCosineMeasures) {
  Load("Docs", {{"a", "one two three"}, {"b", "one two six"},
                {"c", "seven eight nine"}});
  // dice({one,two,three},{one,two,six}) = 2*2/6 = 0.667.
  int64_t dice = RunCount(
      "set simfunction 'dice'; set simthreshold '0.6'; "
      "count(for $l in dataset Docs for $r in dataset Docs "
      "where word-tokens($l.text) ~= word-tokens($r.text) "
      "and $l.id < $r.id return {'l': $l.id})");
  EXPECT_EQ(dice, 1);
  int64_t cosine = RunCount(
      "set simfunction 'cosine'; set simthreshold '0.6'; "
      "count(for $l in dataset Docs for $r in dataset Docs "
      "where word-tokens($l.text) ~= word-tokens($r.text) "
      "and $l.id < $r.id return {'l': $l.id})");
  EXPECT_EQ(cosine, 1);  // cos = 2/3 ~ 0.667
}

// ---------- edit distance over ordered lists (paper Section 3.1) ----------

TEST_F(CoreExtendedTest, EditDistanceOnOrderedLists) {
  Load("Docs", {{"a", "better than i expected"},
                {"b", "better than expected"},
                {"c", "nothing alike at all"}});
  int64_t count = RunCount(
      "count(for $l in dataset Docs for $r in dataset Docs "
      "where edit-distance(word-tokens($l.text), word-tokens($r.text)) <= 1 "
      "and $l.id < $r.id return {'l': $l.id})");
  EXPECT_EQ(count, 1);  // a vs b: one word deleted
}

// ---------- T-occurrence algorithm option ----------

TEST_F(CoreExtendedTest, HeapMergeAlgorithmGivesSameAnswers) {
  std::string dir2 = dir_ + "_heap";
  EngineOptions options;
  options.data_dir = dir2;
  options.topology = {2, 2};
  options.num_threads = 2;
  options.t_occurrence_algorithm = storage::TOccurrenceAlgorithm::kHeapMerge;
  QueryProcessor heap_engine(options);
  for (QueryProcessor* engine : {engine_.get(), &heap_engine}) {
    ASSERT_TRUE(
        engine->Execute("create dataset D primary key id;"
                        "create index ix on D(text) type keyword;")
            .ok());
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(engine
                      ->Insert("D", Value::MakeObject(
                                        {{"id", Value::Int64(i)},
                                         {"text", Value::String(
                                              "tok" + std::to_string(i % 7) +
                                              " tok" + std::to_string(i % 5) +
                                              " tok" + std::to_string(i % 3))}}))
                      .ok());
    }
  }
  std::string query =
      "count(for $d in dataset D where "
      "similarity-jaccard(word-tokens($d.text), "
      "word-tokens('tok1 tok2 tok0')) >= 0.5 return $d)";
  QueryResult scan_result, heap_result;
  ASSERT_TRUE(engine_->Execute(query, &scan_result).ok());
  ASSERT_TRUE(heap_engine.Execute(query, &heap_result).ok());
  EXPECT_EQ(scan_result.rows[0].AsInt64(), heap_result.rows[0].AsInt64());
  storage::RemoveAllBestEffort(dir2);
}

// ---------- template text exposure ----------

TEST_F(CoreExtendedTest, ThreeStageTemplateTextIsValidAqlPlus) {
  for (bool self_like : {true, false}) {
    std::string text = ThreeStageTemplateText(0.5, self_like);
    EXPECT_NE(text.find("##LEFT2"), std::string::npos);
    EXPECT_NE(text.find("$$LPK2"), std::string::npos);
    EXPECT_NE(text.find("prefix-len-jaccard"), std::string::npos);
    EXPECT_EQ(text.find("@DELTA@"), std::string::npos);  // substituted
    if (!self_like) {
      EXPECT_NE(text.find("union("), std::string::npos);
    }
  }
}

// ---------- misc query features ----------

TEST_F(CoreExtendedTest, LimitClause) {
  Load("Docs", {{"a", "x"}, {"b", "x"}, {"c", "x"}, {"d", "x"}});
  QueryResult result;
  ASSERT_TRUE(engine_
                  ->Execute("for $d in dataset Docs order by $d.id "
                            "limit 2 return $d.id",
                            &result)
                  .ok());
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_F(CoreExtendedTest, OrderByMultipleKeysMixedDirections) {
  Load("Docs", {{"b", "1"}, {"a", "1"}, {"a", "2"}});
  QueryResult result;
  ASSERT_TRUE(engine_
                  ->Execute("for $d in dataset Docs "
                            "order by $d.name asc, $d.id desc "
                            "return $d.id",
                            &result)
                  .ok());
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0].AsInt64(), 3);  // (a, id 3), (a, id 2), (b, id 1)
  EXPECT_EQ(result.rows[1].AsInt64(), 2);
  EXPECT_EQ(result.rows[2].AsInt64(), 1);
}

TEST_F(CoreExtendedTest, ExplicitJoinClause) {
  Load("Docs", {{"a", "x"}, {"b", "y"}});
  Load("Others", {{"a", "z"}});
  int64_t count = RunCount(
      "count(join $d in dataset Docs, $o in dataset Others "
      "on $d.name = $o.name return {'d': $d.id})");
  EXPECT_EQ(count, 1);
}

TEST_F(CoreExtendedTest, DataPersistsAcrossEngineInstances) {
  Load("Docs", {{"a", "persisted text"}});
  ASSERT_TRUE(engine_->catalog()->Find("Docs")->FlushAll().ok());
  // A new engine over the same directory re-opens the LSM components; the
  // catalog metadata is session-scoped, so re-declare and re-attach.
  EngineOptions options;
  options.data_dir = dir_;
  options.topology = {2, 2};
  QueryProcessor engine2(options);
  ASSERT_TRUE(engine2.Execute("create dataset Docs primary key id;").ok());
  QueryResult result;
  ASSERT_TRUE(engine2.Execute(
      "count(for $d in dataset Docs return $d)", &result).ok());
  EXPECT_EQ(result.rows[0].AsInt64(), 1);
}

TEST_F(CoreExtendedTest, CornerCaseOnlyJoinStillCorrect) {
  // Every outer key is shorter than the gram length: the entire stream goes
  // through the corner-case path (Figure 14's lower branch).
  Load("Short", {{"a", "t"}, {"b", "u"}});
  Load("Names", {{"ab", "x"}, {"xy", "y"}});
  ASSERT_TRUE(
      engine_->Execute("create index nx on Names(name) type ngram(2);").ok());
  std::string query =
      "count(for $s in dataset Short for $n in dataset Names "
      "where edit-distance($s.name, $n.name) <= 1 "
      "return {'s': $s.id, 'n': $n.id})";
  int64_t indexed = RunCount(query);
  engine_->opt_context().enable_index_join = false;
  int64_t nested = RunCount(query);
  engine_->opt_context().enable_index_join = true;
  EXPECT_EQ(indexed, nested);
  EXPECT_EQ(indexed, 2);  // "a"->"ab", "b"? ed("b","ab")=1 yes; "xy" no
}

// ---------- DML statements ----------

TEST_F(CoreExtendedTest, InsertStatement) {
  ASSERT_TRUE(engine_->Execute("create dataset Docs primary key id;").ok());
  ASSERT_TRUE(engine_
                  ->Execute("insert into Docs {'id': 1, 'name': 'a'};"
                            "insert into Docs [{'id': 2, 'name': 'b'},"
                            "                  {'id': 3, 'name': 'c'}];")
                  .ok());
  EXPECT_EQ(RunCount("count(for $d in dataset Docs return $d)"), 3);
}

TEST_F(CoreExtendedTest, InsertMaintainsIndexes) {
  ASSERT_TRUE(engine_
                  ->Execute("create dataset Docs primary key id;"
                            "create index nx on Docs(name) type ngram(2);"
                            "insert into Docs {'id': 1, 'name': 'maria'};")
                  .ok());
  int64_t count = RunCount(
      "count(for $d in dataset Docs "
      "where edit-distance($d.name, 'marla') <= 1 return $d)");
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(RuleFired("introduce-similarity-select-index"));
}

TEST_F(CoreExtendedTest, DeleteStatement) {
  Load("Docs", {{"a", "keep"}, {"b", "drop"}, {"c", "drop"}});
  ASSERT_TRUE(
      engine_->Execute("delete $d from dataset Docs where $d.text = 'drop'")
          .ok());
  EXPECT_EQ(RunCount("count(for $d in dataset Docs return $d)"), 1);
  // Delete-all (no where clause).
  ASSERT_TRUE(engine_->Execute("delete $d from dataset Docs").ok());
  EXPECT_EQ(RunCount("count(for $d in dataset Docs return $d)"), 0);
}

TEST_F(CoreExtendedTest, DeleteWithSimilarityPredicate) {
  Load("Docs", {{"maria", "x"}, {"marla", "x"}, {"james", "x"}});
  ASSERT_TRUE(engine_
                  ->Execute("delete $d from dataset Docs "
                            "where edit-distance($d.name, 'maria') <= 1")
                  .ok());
  EXPECT_EQ(RunCount("count(for $d in dataset Docs return $d)"), 1);
}

TEST_F(CoreExtendedTest, LoadStatement) {
  std::string path = dir_ + "_load.json";
  ASSERT_TRUE(storage::WriteFileAtomic(
                  path,
                  "{\"id\": 1, \"name\": \"a\"}\n"
                  "\n"
                  "{\"id\": 2, \"name\": \"b\"}\n")
                  .ok());
  ASSERT_TRUE(engine_
                  ->Execute("create dataset Docs primary key id;"
                            "load dataset Docs from '" + path + "'")
                  .ok());
  EXPECT_EQ(RunCount("count(for $d in dataset Docs return $d)"), 2);
  storage::RemoveAllBestEffort(path);
}

TEST_F(CoreExtendedTest, LoadRejectsBadJson) {
  std::string path = dir_ + "_bad.json";
  ASSERT_TRUE(storage::WriteFileAtomic(path, "{not json}\n").ok());
  ASSERT_TRUE(engine_->Execute("create dataset Docs primary key id;").ok());
  EXPECT_FALSE(
      engine_->Execute("load dataset Docs from '" + path + "'").ok());
  storage::RemoveAllBestEffort(path);
}

TEST_F(CoreExtendedTest, InsertRejectsNonConstant) {
  ASSERT_TRUE(engine_->Execute("create dataset Docs primary key id;").ok());
  EXPECT_FALSE(
      engine_->Execute("insert into Docs {'id': $x}").ok());
  EXPECT_FALSE(engine_->Execute("insert into Docs 42").ok());
}

TEST_F(CoreExtendedTest, RowMultiplyingOuterDoesNotDuplicateSurrogates) {
  // Regression: when the outer branch of an index join is itself a join that
  // yields several rows per base record, the surrogate optimization must not
  // apply (duplicate surrogates would square the duplication at the
  // resolution join). Probe has two rows matching the same review group.
  Load("Reviews", {{"a", "one two three"},
                   {"b", "one two three"},
                   {"c", "four five six"}});
  ASSERT_TRUE(engine_
                  ->Execute("create index kw on Reviews(text) type keyword;"
                            "create dataset Probe primary key id;"
                            "insert into Probe [{'id': 1, 'tag': 'x'},"
                            "                   {'id': 2, 'tag': 'x'}];")
                  .ok());
  // Give every review the same tag so each probe row matches every review.
  std::string query =
      "count(for $p in dataset Probe for $o in dataset Reviews "
      "for $i in dataset Reviews "
      "where $p.tag = 'x' "
      "and similarity-jaccard(word-tokens($o.text), word-tokens($i.text)) "
      ">= 0.9 and $o.id < $i.id return {'p': $p.id, 'o': $o.id})";
  int64_t optimized = RunCount(query);
  engine_->opt_context().enable_index_join = false;
  engine_->opt_context().enable_three_stage_join = false;
  int64_t nested = RunCount(query);
  engine_->opt_context().enable_index_join = true;
  engine_->opt_context().enable_three_stage_join = true;
  EXPECT_EQ(optimized, nested);
  EXPECT_EQ(nested, 2);  // pair (a,b), seen through each of the 2 probe rows
}

TEST_F(CoreExtendedTest, VerificationUsesCheckVariants) {
  Load("Docs", {{"maria", "one two"}, {"marla", "one three"}});
  // A scan-based selection keeps the predicate in a SELECT, where the
  // finalize pass must swap in the check variant. (The three-stage join
  // verifies on rank lists and never exposes a plain ge(jaccard) conjunct.)
  auto plan = engine_->Explain(
      "for $t in dataset Docs "
      "where similarity-jaccard(word-tokens($t.text), "
      "word-tokens('one two five')) >= 0.5 return $t");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The final pass swaps verification predicates for the early-terminating
  // check variants (paper Section 3.2).
  EXPECT_NE(plan->find("similarity-jaccard-check"), std::string::npos);
  // And the answers stay the same as the plain-function evaluation.
  int64_t count = RunCount(
      "count(for $l in dataset Docs for $r in dataset Docs "
      "where similarity-jaccard(word-tokens($l.text), "
      "word-tokens($r.text)) >= 0.3 and $l.id < $r.id return $l)");
  EXPECT_EQ(count, 1);  // {one,two} vs {one,three}: 1/3 >= 0.3
}

TEST_F(CoreExtendedTest, ExplainStatement) {
  Load("Docs", {{"maria", "x"}});
  ASSERT_TRUE(
      engine_->Execute("create index nx on Docs(name) type ngram(2);").ok());
  QueryResult result;
  ASSERT_TRUE(engine_
                  ->Execute("explain for $d in dataset Docs "
                            "where edit-distance($d.name, 'marla') <= 1 "
                            "return $d",
                            &result)
                  .ok());
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_NE(result.rows[0].AsString().find("INDEX-SEARCH"),
            std::string::npos);
  // Explain must not execute anything: the dataset stays intact and another
  // query still runs.
  EXPECT_EQ(RunCount("count(for $d in dataset Docs return $d)"), 1);
}

}  // namespace
}  // namespace simdb::core
