// Transport backend tests: rows-frame codec round trips, the shared-memory
// backend under concurrency (this file is in the TSan CI pass), the socket
// backend's forked-worker protocol, drains, and the engine-level seam
// (EngineOptions::transport / SIMDB_TRANSPORT, measured vs modeled network
// accounting).
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "adm/wire.h"
#include "cluster/cost_model.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/query_processor.h"
#include "storage/file_util.h"
#include "transport/transport.h"

namespace simdb::transport {
namespace {

using adm::Value;
using hyracks::Rows;
using hyracks::Tuple;

Rows MakeRows(uint64_t seed, int n) {
  Random rng(seed);
  Rows rows;
  for (int i = 0; i < n; ++i) {
    Tuple row;
    row.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(1000))));
    row.push_back(Value::String("r" + std::to_string(i)));
    row.push_back(Value::MakeArray(
        {Value::Double(0.25 * static_cast<double>(i)), Value::Null()}));
    rows.push_back(std::move(row));
  }
  return rows;
}

bool RowsEqual(const Rows& a, const Rows& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t c = 0; c < a[i].size(); ++c) {
      if (!(a[i][c] == b[i][c])) return false;
    }
  }
  return true;
}

TEST(RowsFrameTest, RoundTripsEmptyAndNonEmpty) {
  for (int n : {0, 1, 7, 100}) {
    Rows rows = MakeRows(42, n);
    std::string frame;
    EncodeRowsFrame(rows, &frame);
    Result<Rows> back = DecodeRowsFrame(frame);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(RowsEqual(rows, *back)) << "n=" << n;
  }
}

TEST(RowsFrameTest, CorruptionRejected) {
  Rows rows = MakeRows(7, 5);
  std::string frame;
  EncodeRowsFrame(rows, &frame);
  std::string bad = frame;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x01);
  EXPECT_FALSE(DecodeRowsFrame(bad).ok());
  EXPECT_FALSE(DecodeRowsFrame(std::string_view(frame).substr(
                   0, frame.size() - 1))
                   .ok());
}

TEST(RowsFrameTest, TrailingPayloadRejected) {
  Rows rows = MakeRows(7, 2);
  std::string payload_frame;
  EncodeRowsFrame(rows, &payload_frame);
  // Re-wrap the decoded payload plus junk in a fresh (checksum-valid) frame:
  // the rows decoder itself must notice the leftovers.
  ByteReader r(payload_frame);
  Result<std::string_view> payload = adm::ReadFrame(&r);
  ASSERT_TRUE(payload.ok());
  std::string bigger(*payload);
  bigger += "junk";
  std::string frame;
  adm::WriteFrame(bigger, &frame);
  Result<Rows> back = DecodeRowsFrame(frame);
  ASSERT_FALSE(back.ok());
  EXPECT_NE(back.status().message().find("trailing"), std::string::npos);
}

TEST(TransportKindTest, NamesAndEnvParsing) {
  EXPECT_STREQ(TransportKindName(TransportKind::kModeled), "modeled");
  EXPECT_STREQ(TransportKindName(TransportKind::kSharedMemory), "shm");
  EXPECT_STREQ(TransportKindName(TransportKind::kSocket), "socket");
  ::unsetenv("SIMDB_TRANSPORT");
  EXPECT_EQ(KindFromEnv(TransportKind::kModeled), TransportKind::kModeled);
  ::setenv("SIMDB_TRANSPORT", "socket", 1);
  EXPECT_EQ(KindFromEnv(TransportKind::kModeled), TransportKind::kSocket);
  ::setenv("SIMDB_TRANSPORT", "shared-memory", 1);
  EXPECT_EQ(KindFromEnv(TransportKind::kModeled),
            TransportKind::kSharedMemory);
  ::setenv("SIMDB_TRANSPORT", "bogus", 1);
  EXPECT_EQ(KindFromEnv(TransportKind::kSocket), TransportKind::kSocket);
  ::unsetenv("SIMDB_TRANSPORT");
}

TEST(ModeledTransportTest, NeverShipsAndDrainsTrivially) {
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kModeled, 4);
  EXPECT_FALSE(t->measures_wall_clock());
  EXPECT_FALSE(t->ShouldShip(100, 1 << 20));
  EXPECT_TRUE(t->Drain().ok());
}

TEST(SharedMemoryTransportTest, ShipIsIdentityOnRows) {
  std::unique_ptr<Transport> t =
      MakeTransport(TransportKind::kSharedMemory, 1);
  EXPECT_TRUE(t->measures_wall_clock());
  EXPECT_TRUE(t->ShouldShip(1, 0));  // ships even purely local traffic
  EXPECT_FALSE(t->ShouldShip(0, 0));
  Rows rows = MakeRows(1, 20);
  Rows original = rows;
  double seconds = -1;
  ASSERT_TRUE(t->Ship(0, &rows, &seconds).ok());
  EXPECT_TRUE(RowsEqual(rows, original));
  EXPECT_GE(seconds, 0.0);
  EXPECT_TRUE(t->Drain().ok());
}

TEST(SharedMemoryTransportTest, ConcurrentShipsStayIsolated) {
  // More shippers than in-flight frame slots: threads contend on the slot
  // pool's mutex/condvar and every thread must still get its own rows back.
  std::unique_ptr<Transport> t =
      MakeTransport(TransportKind::kSharedMemory, 4);
  constexpr int kThreads = 16;
  constexpr int kShipsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int s = 0; s < kShipsPerThread; ++s) {
        Rows rows = MakeRows(static_cast<uint64_t>(i * 1000 + s), 8);
        Rows original = rows;
        double seconds = 0;
        if (!t->Ship(i % 4, &rows, &seconds).ok() ||
            !RowsEqual(rows, original)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(t->Drain().ok());
}

TEST(SharedMemoryTransportTest, ConcurrentDrainsDoNotLoseShipWakeups) {
  // Regression: shippers and drainers used to share one condition variable
  // with notify_one on slot release, so a Drain waiter could swallow the
  // notification meant for a blocked shipper and deadlock the pool. Hammer
  // ships from more threads than slots while drainers wait concurrently; a
  // hang here is the bug.
  std::unique_ptr<Transport> t =
      MakeTransport(TransportKind::kSharedMemory, 2);
  constexpr int kShippers = 12;
  constexpr int kShipsPerThread = 40;
  std::atomic<int> failures{0};
  std::atomic<bool> shipping_done{false};
  std::vector<std::thread> threads;
  threads.reserve(kShippers + 2);
  for (int i = 0; i < kShippers; ++i) {
    threads.emplace_back([&, i] {
      for (int s = 0; s < kShipsPerThread; ++s) {
        Rows rows = MakeRows(static_cast<uint64_t>(i * 777 + s), 4);
        double seconds = 0;
        if (!t->Ship(i % 2, &rows, &seconds).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int d = 0; d < 2; ++d) {
    threads.emplace_back([&] {
      while (!shipping_done.load(std::memory_order_relaxed)) {
        // Bounded drains interleave with shipping; a timeout is a valid
        // outcome under load, losing a shipper's wakeup is not.
        Status s = t->Drain(/*timeout_seconds=*/0.05);
        if (!s.ok() && s.code() != StatusCode::kDeadlineExceeded) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < kShippers; ++i) threads[static_cast<size_t>(i)].join();
  shipping_done.store(true, std::memory_order_relaxed);
  for (size_t i = kShippers; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(t->Drain().ok());
}

TEST(SocketTransportTest, ShipCrossesWorkerProcessAndIsIdentity) {
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kSocket, 2);
  EXPECT_TRUE(t->measures_wall_clock());
  // Socket backend ships only destinations with accounted remote traffic.
  EXPECT_FALSE(t->ShouldShip(10, 0));
  EXPECT_TRUE(t->ShouldShip(10, 128));
  for (int node = 0; node < 2; ++node) {
    Rows rows = MakeRows(static_cast<uint64_t>(node) + 5, 30);
    Rows original = rows;
    double seconds = -1;
    ASSERT_TRUE(t->Ship(node, &rows, &seconds).ok()) << "node " << node;
    EXPECT_TRUE(RowsEqual(rows, original)) << "node " << node;
    EXPECT_GT(seconds, 0.0);
  }
  // Drain pings every spawned worker over the control channel.
  EXPECT_TRUE(t->Drain().ok());
}

TEST(SocketTransportTest, ManySequentialShipsAndConcurrentNodes) {
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kSocket, 4);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int node = 0; node < 4; ++node) {
    threads.emplace_back([&, node] {
      for (int s = 0; s < 25; ++s) {
        Rows rows = MakeRows(static_cast<uint64_t>(node * 100 + s), 12);
        Rows original = rows;
        double seconds = 0;
        if (!t->Ship(node, &rows, &seconds).ok() ||
            !RowsEqual(rows, original)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(t->Drain().ok());
}

TEST(SocketTransportTest, WorkersForkedEagerlyAndDrainBoundedWhenIdle) {
  // Workers exist (and answer pings) from construction — nothing is forked
  // lazily from pool threads mid-query — so a drain succeeds before any
  // ship, bounded or not.
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kSocket, 3);
  EXPECT_TRUE(t->Drain(/*timeout_seconds=*/5.0).ok());
  EXPECT_TRUE(t->Drain().ok());
}

TEST(SocketTransportTest, TimedOutDrainLeavesChannelUsable) {
  // Regression: a bounded drain that times out *after* writing its ping
  // leaves the pong in flight on the stream. The next request on that
  // channel used to read the stale pong as its own reply and desynchronize
  // the protocol; now it drains pending pongs first. An already-expired
  // deadline forces exactly that path deterministically (the ping is
  // written, the bounded wait has zero budget left).
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kSocket, 2);
  int timed_out = 0;
  for (int i = 0; i < 5; ++i) {
    Status s = t->Drain(/*timeout_seconds=*/1e-9);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
      ++timed_out;
    }
  }
  ASSERT_GT(timed_out, 0);
  // Ships and unbounded drains must still work on the realigned channel.
  for (int node = 0; node < 2; ++node) {
    Rows rows = MakeRows(static_cast<uint64_t>(node) + 77, 10);
    Rows original = rows;
    double seconds = 0;
    ASSERT_TRUE(t->Ship(node, &rows, &seconds).ok()) << "node " << node;
    EXPECT_TRUE(RowsEqual(rows, original));
  }
  EXPECT_TRUE(t->Drain().ok());
}

TEST(SocketTransportTest, BoundedDrainSharesOneDeadlineAcrossWorkers) {
  // The timeout is one budget for the whole drain, not per worker: with N
  // workers and an expired deadline the drain returns once, quickly —
  // it must not serially spend a full timeout on each of the N channels.
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kSocket, 4);
  // Warm the channels so every worker is known-alive.
  EXPECT_TRUE(t->Drain().ok());
  Stopwatch sw;
  Status s = t->Drain(/*timeout_seconds=*/0.05);
  double elapsed = sw.ElapsedSeconds();
  // Either it finished in time or it timed out; both must respect the
  // *shared* budget with generous scheduling slack (4 x 0.05s serial
  // per-worker deadlines would take at least 0.2s).
  if (!s.ok()) EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 0.15);
  EXPECT_TRUE(t->Drain().ok());
}

TEST(SocketTransportTest, KilledWorkerSurfacesAsUnavailable) {
  // Worker-death injection: SIGKILL one worker and the failure mode must be
  // deterministic — kUnavailable (programmatically distinct from IO or
  // corruption errors), no hang, bounded drain still returns promptly, and
  // a fresh transport is unaffected.
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kSocket, 2);
  std::vector<int> pids = t->worker_pids();
  ASSERT_EQ(pids.size(), 2u);
  ASSERT_EQ(::kill(pids[1], SIGKILL), 0);
  // The kernel closes the worker's socket end when the process dies; both a
  // ship and a fragment dispatch to the dead node must fail kUnavailable.
  Rows rows = MakeRows(3, 8);
  double seconds = 0;
  Status dead_ship = t->Ship(1, &rows, &seconds);
  ASSERT_FALSE(dead_ship.ok());
  EXPECT_EQ(dead_ship.code(), StatusCode::kUnavailable);
  EXPECT_NE(dead_ship.message().find("worker gone"), std::string::npos);
  std::string reply;
  Status dead_frag = t->ExecuteFragment(1, "payload", &reply, &seconds);
  ASSERT_FALSE(dead_frag.ok());
  EXPECT_EQ(dead_frag.code(), StatusCode::kUnavailable);
  // The healthy worker keeps serving.
  Rows ok_rows = MakeRows(4, 8);
  Rows original = ok_rows;
  ASSERT_TRUE(t->Ship(0, &ok_rows, &seconds).ok());
  EXPECT_TRUE(RowsEqual(ok_rows, original));
  // Drains fail (they ping every worker) but return promptly — never hang —
  // and report the dead worker as unavailable.
  Stopwatch sw;
  Status drained = t->Drain(/*timeout_seconds=*/5.0);
  ASSERT_FALSE(drained.ok());
  EXPECT_EQ(drained.code(), StatusCode::kUnavailable);
  EXPECT_LT(sw.ElapsedSeconds(), 5.0);
  // Cancels hit the dead channel too; also kUnavailable, never a hang.
  Status cancelled = t->CancelFragments(9, /*timeout_seconds=*/5.0);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kUnavailable);
  // A replacement transport forks fresh workers and is fully functional.
  std::unique_ptr<Transport> fresh = MakeTransport(TransportKind::kSocket, 2);
  Rows fresh_rows = MakeRows(5, 8);
  Rows fresh_original = fresh_rows;
  ASSERT_TRUE(fresh->Ship(1, &fresh_rows, &seconds).ok());
  EXPECT_TRUE(RowsEqual(fresh_rows, fresh_original));
  EXPECT_TRUE(fresh->Drain().ok());
}

TEST(SocketTransportTest, OutOfRangeNodeFailsLoudly) {
  // Clamping a bad dst_node to worker 0 would mask routing bugs while
  // reporting success; it must be an error instead.
  std::unique_ptr<Transport> t = MakeTransport(TransportKind::kSocket, 2);
  Rows rows = MakeRows(9, 3);
  double seconds = 0;
  Status s = t->Ship(2, &rows, &seconds);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("out-of-range"), std::string::npos);
  EXPECT_FALSE(t->Ship(-1, &rows, &seconds).ok());
}

// --- Engine-level seam -----------------------------------------------------

std::string ScratchDir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("simdb_transport_test_") + tag + "_" +
           std::to_string(::getpid())))
      .string();
}

core::EngineOptions EngineOptionsFor(const std::string& dir,
                                     TransportKind kind) {
  core::EngineOptions options;
  options.data_dir = dir;
  options.topology = {4, 2};
  options.num_threads = 2;
  options.transport = kind;
  return options;
}

void LoadTinyDataset(core::QueryProcessor& engine) {
  ASSERT_TRUE(engine.CreateDataset("D", "id").ok());
  const char* titles[] = {"data base systems", "database system design",
                          "query processing", "similarity query processing",
                          "large scale data", "parallel data management"};
  for (int i = 0; i < 60; ++i) {
    Value rec = Value::MakeObject(
        {{"id", Value::Int64(i)},
         {"title", Value::String(titles[i % 6])},
         {"score", Value::Int64(i % 10)}});
    ASSERT_TRUE(engine.Insert("D", std::move(rec)).ok());
  }
}

constexpr const char* kJoinQuery =
    "set simfunction \"jaccard\"; set simthreshold \"0.5\"; "
    "for $a in dataset('D') for $b in dataset('D') "
    "where word-tokens($a.title) ~= word-tokens($b.title) "
    "and $a.id < $b.id return { \"a\": $a.id, \"b\": $b.id };";

/// All backends must return identical rows for an exchange-heavy join, and
/// measured backends must flip the stats/cost-model to measured-network
/// accounting.
TEST(EngineTransportTest, BackendsAnswerIdenticallyAndAccountingFlips) {
  std::vector<std::string> expected;
  for (TransportKind kind :
       {TransportKind::kModeled, TransportKind::kSharedMemory,
        TransportKind::kSocket}) {
    std::string dir = ScratchDir(TransportKindName(kind));
    storage::RemoveAllBestEffort(dir);
    core::QueryProcessor engine(EngineOptionsFor(dir, kind));
    LoadTinyDataset(engine);
    core::QueryResult result;
    ASSERT_TRUE(engine.Execute(kJoinQuery, &result).ok());
    std::vector<std::string> rows;
    for (const Value& row : result.rows) rows.push_back(row.ToJson());
    std::sort(rows.begin(), rows.end());
    if (kind == TransportKind::kModeled) {
      expected = rows;
      EXPECT_FALSE(result.exec.network_measured);
    } else {
      EXPECT_EQ(rows, expected) << TransportKindName(kind);
      EXPECT_TRUE(result.exec.network_measured) << TransportKindName(kind);
    }
    cluster::MakespanReport report =
        cluster::ComputeMakespan(result.exec, engine.options().topology);
    if (kind == TransportKind::kModeled) {
      EXPECT_FALSE(report.network_measured);
      EXPECT_EQ(report.measured_network_seconds, 0.0);
      EXPECT_GT(report.network_seconds, 0.0);  // remote traffic was charged
    } else {
      EXPECT_TRUE(report.network_measured) << TransportKindName(kind);
      EXPECT_EQ(report.network_seconds, 0.0) << TransportKindName(kind);
      EXPECT_GT(report.measured_network_seconds, 0.0)
          << TransportKindName(kind);
    }
    EXPECT_TRUE(engine.DrainTransport().ok());
    storage::RemoveAllBestEffort(dir);
  }
}

TEST(EngineTransportTest, EnvOverrideSelectsBackend) {
  std::string dir = ScratchDir("env");
  storage::RemoveAllBestEffort(dir);
  ::setenv("SIMDB_TRANSPORT", "shm", 1);
  core::QueryProcessor engine(
      EngineOptionsFor(dir, TransportKind::kModeled));
  ::unsetenv("SIMDB_TRANSPORT");
  EXPECT_EQ(engine.transport_kind(), TransportKind::kSharedMemory);
  storage::RemoveAllBestEffort(dir);
}

TEST(EngineTransportTest, SetTransportSwitchesBackend) {
  std::string dir = ScratchDir("switch");
  storage::RemoveAllBestEffort(dir);
  core::QueryProcessor engine(
      EngineOptionsFor(dir, TransportKind::kModeled));
  LoadTinyDataset(engine);
  core::QueryResult modeled;
  ASSERT_TRUE(engine.Execute(kJoinQuery, &modeled).ok());
  EXPECT_FALSE(modeled.exec.network_measured);
  engine.set_transport(TransportKind::kSharedMemory);
  core::QueryResult shm;
  ASSERT_TRUE(engine.Execute(kJoinQuery, &shm).ok());
  EXPECT_TRUE(shm.exec.network_measured);
  auto normalize = [](const core::QueryResult& r) {
    std::vector<std::string> rows;
    for (const Value& row : r.rows) rows.push_back(row.ToJson());
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(normalize(modeled), normalize(shm));
  storage::RemoveAllBestEffort(dir);
}

}  // namespace
}  // namespace simdb::transport
