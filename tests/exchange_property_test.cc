// Property tests on the exchange connectors and executor invariants: every
// repartitioning must preserve the multiset of rows, broadcasts must
// replicate exactly, and the traffic accounting must add up.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"
#include "common/thread_pool.h"
#include "hyracks/exec.h"
#include "hyracks/ops_basic.h"
#include "hyracks/ops_exchange.h"
#include "hyracks/ops_group.h"
#include "hyracks/ops_join.h"
#include "transport/transport.h"

namespace simdb::hyracks {
namespace {

using adm::Value;

class ExchangeProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  ExchangeProperty() : pool_(2) {
    ctx_.pool = &pool_;
    ctx_.topology = {4, 2};  // 4 nodes x 2 partitions
  }

  PartitionedRows RandomRows(Random& rng, int max_rows) {
    PartitionedRows rows(
        static_cast<size_t>(ctx_.topology.total_partitions()));
    int n = 1 + static_cast<int>(rng.Uniform(static_cast<uint64_t>(max_rows)));
    for (int i = 0; i < n; ++i) {
      Tuple t = {Value::Int64(rng.UniformRange(0, 20)),
                 Value::String(std::string(rng.Uniform(8), 'x'))};
      rows[rng.Uniform(rows.size())].push_back(std::move(t));
    }
    return rows;
  }

  std::multiset<std::string> Flatten(const PartitionedRows& rows) {
    std::multiset<std::string> out;
    for (const Rows& part : rows) {
      for (const Tuple& t : part) {
        std::string key;
        for (const Value& v : t) key += v.ToJson() + "|";
        out.insert(key);
      }
    }
    return out;
  }

  ThreadPool pool_;
  ExecContext ctx_;
};

TEST_P(ExchangeProperty, HashExchangePreservesMultiset) {
  Random rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    PartitionedRows in = RandomRows(rng, 60);
    HashExchangeOp op({0});
    OpStats stats;
    auto out = *op.Execute(ctx_, {&in}, &stats);
    EXPECT_EQ(Flatten(in), Flatten(*&out));
    // Co-location: equal keys in one partition.
    std::map<int64_t, std::set<size_t>> where;
    for (size_t p = 0; p < out.size(); ++p) {
      for (const Tuple& t : out[p]) where[t[0].AsInt64()].insert(p);
    }
    for (const auto& [k, parts] : where) {
      EXPECT_EQ(parts.size(), 1u) << "key " << k;
    }
  }
}

TEST_P(ExchangeProperty, BroadcastReplicatesExactly) {
  Random rng(GetParam() + 100);
  PartitionedRows in = RandomRows(rng, 30);
  BroadcastExchangeOp op;
  OpStats stats;
  auto out = *op.Execute(ctx_, {&in}, &stats);
  std::multiset<std::string> original = Flatten(in);
  for (const Rows& part : out) {
    PartitionedRows single(1);
    single[0] = part;
    EXPECT_EQ(Flatten(single), original);
  }
  // Accounting: every tuple crosses to every partition exactly once.
  uint64_t expected_total = 0;
  for (const Rows& part : in) {
    for (const Tuple& t : part) expected_total += TupleBytes(t) * out.size();
  }
  EXPECT_EQ(stats.local_bytes + stats.remote_bytes, expected_total);
  EXPECT_GT(stats.remote_bytes, stats.local_bytes);  // 4 nodes: mostly remote
}

TEST_P(ExchangeProperty, GatherMovesEverythingToPartitionZero) {
  Random rng(GetParam() + 200);
  PartitionedRows in = RandomRows(rng, 40);
  GatherOp op;
  OpStats stats;
  auto out = *op.Execute(ctx_, {&in}, &stats);
  EXPECT_EQ(Flatten(in), Flatten(out));
  for (size_t p = 1; p < out.size(); ++p) EXPECT_TRUE(out[p].empty());
}

TEST_P(ExchangeProperty, MergeGatherProducesGlobalOrder) {
  Random rng(GetParam() + 300);
  PartitionedRows in = RandomRows(rng, 50);
  SortOp sort({{0, true}});
  OpStats s1;
  auto sorted = *sort.Execute(ctx_, {&in}, &s1);
  MergeGatherOp merge({{0, true}});
  OpStats s2;
  auto out = *merge.Execute(ctx_, {&sorted}, &s2);
  EXPECT_EQ(Flatten(in), Flatten(out));
  for (size_t i = 1; i < out[0].size(); ++i) {
    EXPECT_LE(out[0][i - 1][0].AsInt64(), out[0][i][0].AsInt64());
  }
}

TEST_P(ExchangeProperty, GroupByCountsMatchNaive) {
  Random rng(GetParam() + 400);
  PartitionedRows in = RandomRows(rng, 80);
  // Naive counts.
  std::map<int64_t, int64_t> expected;
  for (const Rows& part : in) {
    for (const Tuple& t : part) ++expected[t[0].AsInt64()];
  }
  // Exchange + group pipeline (what the job generator emits).
  HashExchangeOp exchange({0});
  OpStats s1;
  auto shuffled = *exchange.Execute(ctx_, {&in}, &s1);
  HashGroupOp group({Col(0, "k")}, {{AggSpec::Kind::kCount, nullptr, "n"}});
  OpStats s2;
  auto grouped = *group.Execute(ctx_, {&shuffled}, &s2);
  std::map<int64_t, int64_t> actual;
  for (const Rows& part : grouped) {
    for (const Tuple& t : part) actual[t[0].AsInt64()] = t[1].AsInt64();
  }
  EXPECT_EQ(actual, expected);
}

TEST_P(ExchangeProperty, HashJoinMatchesNaiveJoin) {
  Random rng(GetParam() + 500);
  PartitionedRows left = RandomRows(rng, 40);
  PartitionedRows right = RandomRows(rng, 40);
  // Naive count of matching pairs.
  int64_t expected = 0;
  for (const Rows& lp : left) {
    for (const Tuple& lt : lp) {
      for (const Rows& rp : right) {
        for (const Tuple& rt : rp) {
          if (lt[0] == rt[0]) ++expected;
        }
      }
    }
  }
  HashExchangeOp ex_left({0}), ex_right({0});
  OpStats s;
  auto l = *ex_left.Execute(ctx_, {&left}, &s);
  auto r = *ex_right.Execute(ctx_, {&right}, &s);
  HashJoinOp join({0}, {0});
  auto out = *join.Execute(ctx_, {&l, &r}, &s);
  EXPECT_EQ(static_cast<int64_t>(RowsCount(out)), expected);
}

TEST_P(ExchangeProperty, ModeledAndSharedMemoryAccountingAgree) {
  // The exchange byte/transfer counters are computed by BuildDestination
  // from routing decisions alone — which backend then ships the built rows
  // must not change them. Run the same input through every exchange kind
  // under the modeled and shared-memory backends and compare the counters
  // (these are the exchange.*.{local_bytes,remote_bytes} figures the
  // observability layer exports).
  Random rng(GetParam() + 900);
  std::unique_ptr<transport::Transport> modeled =
      transport::MakeTransport(transport::TransportKind::kModeled,
                               ctx_.topology.num_nodes);
  std::unique_ptr<transport::Transport> shm =
      transport::MakeTransport(transport::TransportKind::kSharedMemory,
                               ctx_.topology.num_nodes);
  for (int iter = 0; iter < 10; ++iter) {
    PartitionedRows in = RandomRows(rng, 50);
    auto run = [&](ExchangeOperator& op, transport::Transport* t,
                   OpStats* stats) {
      ExecContext ctx = ctx_;
      ctx.transport = t;
      PartitionedRows copy = in;  // private steal-able copy per run
      return RunExchange(ctx, op, {&copy}, /*steal=*/nullptr, stats);
    };
    HashExchangeOp hash({0});
    BroadcastExchangeOp bcast;
    GatherOp gather;
    ExchangeOperator* ops[] = {&hash, &bcast, &gather};
    for (ExchangeOperator* op : ops) {
      OpStats m_stats, s_stats;
      auto m = run(*op, modeled.get(), &m_stats);
      auto s = run(*op, shm.get(), &s_stats);
      ASSERT_TRUE(m.ok() && s.ok()) << op->name();
      EXPECT_EQ(Flatten(*m), Flatten(*s)) << op->name();
      EXPECT_EQ(m_stats.local_bytes, s_stats.local_bytes) << op->name();
      EXPECT_EQ(m_stats.remote_bytes, s_stats.remote_bytes) << op->name();
      EXPECT_EQ(m_stats.remote_transfers, s_stats.remote_transfers)
          << op->name();
      // Only the real backend spent ship time.
      EXPECT_EQ(m_stats.transport_seconds, 0.0) << op->name();
      EXPECT_GT(s_stats.transport_seconds, 0.0) << op->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExchangeProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace simdb::hyracks
