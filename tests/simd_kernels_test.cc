// SIMD kernels vs their scalar references: every kernel must be
// bit-identical to the similarity/ tuple-path implementation at every
// dispatch tier, across adversarial shapes (empty sets, all-equal ids,
// lengths straddling the 8/16-lane boundaries, k=0 edit distance) and
// randomized sweeps. Runs under ASan and TSan in CI.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "similarity/edit_distance.h"
#include "similarity/jaccard.h"
#include "similarity/simd_kernels.h"

namespace simdb {
namespace {

// Runs `fn` once per dispatch tier this machine supports, restoring the
// ambient level afterwards.
template <typename Fn>
void ForEachLevel(Fn fn) {
  const simd::DispatchLevel ambient = simd::ActiveLevel();
  std::vector<simd::DispatchLevel> levels = {simd::DispatchLevel::kScalar};
  if (simd::MaxSupportedLevel() == simd::DispatchLevel::kAvx2) {
    levels.push_back(simd::DispatchLevel::kAvx2);
  }
  for (simd::DispatchLevel level : levels) {
    simd::SetActiveLevelForTest(level);
    fn(level);
  }
  simd::SetActiveLevelForTest(ambient);
}

std::vector<uint32_t> SortedIds(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void ExpectIntersectMatches(const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b) {
  const size_t expected = similarity::IntersectSortedIds(a, b);
  EXPECT_EQ(simd::IntersectSortedIds(a.data(), a.size(), b.data(), b.size()),
            expected)
      << "la=" << a.size() << " lb=" << b.size() << " at "
      << simd::LevelName(simd::ActiveLevel());
}

void ExpectJaccardMatches(const std::vector<uint32_t>& a,
                          const std::vector<uint32_t>& b, double delta) {
  const double check_ref = similarity::JaccardCheckSortedIds(a, b, delta);
  const double check_got =
      simd::JaccardCheckSortedIds(a.data(), a.size(), b.data(), b.size(),
                                  delta);
  // Bit-identical, not approximately equal: the differential seeds compare
  // serialized doubles.
  EXPECT_EQ(check_got, check_ref)
      << "la=" << a.size() << " lb=" << b.size() << " delta=" << delta
      << " at " << simd::LevelName(simd::ActiveLevel());
  EXPECT_EQ(simd::JaccardSortedIds(a.data(), a.size(), b.data(), b.size()),
            similarity::JaccardSortedIds(a, b));
}

TEST(SimdDispatchTest, LevelsAreCoherent) {
  EXPECT_LE(simd::ActiveLevel(), simd::MaxSupportedLevel());
  EXPECT_STREQ(simd::LevelName(simd::DispatchLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::DispatchLevel::kAvx2), "avx2");
  // The no-AVX2 CI job pins SIMDB_SIMD=scalar; assert the override took.
  const char* env = std::getenv("SIMDB_SIMD");
  if (env != nullptr && std::string(env) == "scalar") {
    EXPECT_EQ(simd::ActiveLevel(), simd::DispatchLevel::kScalar);
  }
}

TEST(SimdDispatchTest, ForceLevelClampsToSupported) {
  const simd::DispatchLevel ambient = simd::ActiveLevel();
  simd::SetActiveLevelForTest(simd::DispatchLevel::kAvx2);
  EXPECT_LE(simd::ActiveLevel(), simd::MaxSupportedLevel());
  simd::SetActiveLevelForTest(simd::DispatchLevel::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), simd::DispatchLevel::kScalar);
  simd::SetActiveLevelForTest(ambient);
}

TEST(SimdIntersectTest, AdversarialShapes) {
  ForEachLevel([](simd::DispatchLevel) {
    ExpectIntersectMatches({}, {});
    ExpectIntersectMatches({}, {1, 2, 3});
    ExpectIntersectMatches({1, 2, 3}, {});
    // All-equal ids: multiset semantics (min of the multiplicities).
    ExpectIntersectMatches({5, 5, 5, 5}, {5, 5});
    ExpectIntersectMatches(std::vector<uint32_t>(16, 7),
                           std::vector<uint32_t>(9, 7));
    // Disjoint and identical around lane boundaries.
    for (size_t len : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 32u, 33u, 64u}) {
      std::vector<uint32_t> evens, odds, all;
      for (size_t i = 0; i < len; ++i) {
        evens.push_back(static_cast<uint32_t>(2 * i));
        odds.push_back(static_cast<uint32_t>(2 * i + 1));
        all.push_back(static_cast<uint32_t>(i));
      }
      ExpectIntersectMatches(evens, odds);
      ExpectIntersectMatches(evens, evens);
      ExpectIntersectMatches(all, evens);
      ExpectIntersectMatches(all, all);
    }
    // Heavy skew exercises the galloping path.
    std::vector<uint32_t> big;
    for (uint32_t i = 0; i < 2000; ++i) big.push_back(3 * i);
    ExpectIntersectMatches({0, 3, 4, 2999, 3000, 5997}, big);
  });
}

TEST(SimdIntersectTest, RandomizedAgainstReference) {
  ForEachLevel([](simd::DispatchLevel) {
    std::mt19937 rng(1234);
    for (int iter = 0; iter < 600; ++iter) {
      const size_t la = rng() % 70;
      const size_t lb = rng() % 70;
      const uint32_t universe = 1 + rng() % 90;  // small => dense overlap
      const bool allow_dups = (iter % 3) == 0;
      std::vector<uint32_t> a, b;
      for (size_t i = 0; i < la; ++i) a.push_back(rng() % universe);
      for (size_t i = 0; i < lb; ++i) b.push_back(rng() % universe);
      a = SortedIds(std::move(a));
      b = SortedIds(std::move(b));
      if (!allow_dups) {
        a.erase(std::unique(a.begin(), a.end()), a.end());
        b.erase(std::unique(b.begin(), b.end()), b.end());
      }
      ExpectIntersectMatches(a, b);
    }
  });
}

TEST(SimdJaccardTest, AdversarialShapes) {
  const std::vector<double> deltas = {0.0, 0.1, 0.5, 0.8, 0.9, 1.0};
  ForEachLevel([&](simd::DispatchLevel) {
    for (double delta : deltas) {
      ExpectJaccardMatches({}, {}, delta);
      ExpectJaccardMatches({}, {1, 2, 3}, delta);
      ExpectJaccardMatches({1, 2, 3, 4, 5, 6, 7, 8},
                           {1, 2, 3, 4, 5, 6, 7, 8}, delta);
      ExpectJaccardMatches({5, 5, 5, 5}, {5, 5}, delta);
      for (size_t len : {7u, 8u, 9u, 15u, 16u, 17u, 33u}) {
        std::vector<uint32_t> a, b;
        for (size_t i = 0; i < len; ++i) {
          a.push_back(static_cast<uint32_t>(i));
          b.push_back(static_cast<uint32_t>(i + len / 2));
        }
        ExpectJaccardMatches(a, b, delta);
      }
    }
  });
}

TEST(SimdJaccardTest, RandomizedBitIdentical) {
  ForEachLevel([](simd::DispatchLevel) {
    std::mt19937 rng(99);
    for (int iter = 0; iter < 600; ++iter) {
      const size_t la = rng() % 60;
      const size_t lb = rng() % 60;
      const uint32_t universe = 1 + rng() % 80;
      std::vector<uint32_t> a, b;
      for (size_t i = 0; i < la; ++i) a.push_back(rng() % universe);
      for (size_t i = 0; i < lb; ++i) b.push_back(rng() % universe);
      a = SortedIds(std::move(a));
      b = SortedIds(std::move(b));
      if (iter % 2 == 0) {
        a.erase(std::unique(a.begin(), a.end()), a.end());
        b.erase(std::unique(b.begin(), b.end()), b.end());
      }
      const double delta =
          std::uniform_real_distribution<double>(0.0, 1.0)(rng);
      ExpectJaccardMatches(a, b, delta);
    }
  });
}

TEST(SimdJaccardTest, BatchFormsMatchPerPair) {
  ForEachLevel([](simd::DispatchLevel) {
    std::mt19937 rng(7);
    std::vector<uint32_t> probe;
    for (uint32_t i = 0; i < 24; ++i) probe.push_back(3 * i);
    // CSR candidates, lengths 0..40.
    std::vector<uint32_t> ids;
    std::vector<size_t> offsets = {0};
    const size_t n = 50;
    for (size_t c = 0; c < n; ++c) {
      const size_t len = rng() % 41;
      std::vector<uint32_t> cand;
      for (size_t i = 0; i < len; ++i) cand.push_back(rng() % 80);
      cand = SortedIds(std::move(cand));
      cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
      ids.insert(ids.end(), cand.begin(), cand.end());
      offsets.push_back(ids.size());
    }
    std::vector<double> out(n);
    simd::JaccardCheckBatch(probe.data(), probe.size(), ids.data(),
                            offsets.data(), n, 0.3, out.data());
    for (size_t c = 0; c < n; ++c) {
      EXPECT_EQ(out[c], simd::JaccardCheckSortedIds(
                            probe.data(), probe.size(), ids.data() + offsets[c],
                            offsets[c + 1] - offsets[c], 0.3));
    }
    // Pair forms against themselves as both sides.
    std::vector<double> check_out(n), eval_out(n);
    simd::JaccardCheckPairs(ids.data(), offsets.data(), ids.data(),
                            offsets.data(), n, 0.5, check_out.data());
    simd::JaccardEvalPairs(ids.data(), offsets.data(), ids.data(),
                           offsets.data(), n, eval_out.data());
    for (size_t c = 0; c < n; ++c) {
      const size_t len = offsets[c + 1] - offsets[c];
      EXPECT_EQ(check_out[c],
                simd::JaccardCheckSortedIds(ids.data() + offsets[c], len,
                                            ids.data() + offsets[c], len,
                                            0.5));
      EXPECT_EQ(eval_out[c],
                simd::JaccardSortedIds(ids.data() + offsets[c], len,
                                       ids.data() + offsets[c], len));
    }
  });
}

std::string RandomString(std::mt19937& rng, size_t len, int alphabet) {
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng() % alphabet));
  }
  return s;
}

TEST(SimdEditDistanceTest, AdversarialShapes) {
  ForEachLevel([](simd::DispatchLevel) {
    for (int k : {0, 1, 2, 5}) {
      EXPECT_EQ(simd::EditDistanceCheck("", "", k),
                similarity::EditDistanceCheck("", "", k));
      EXPECT_EQ(simd::EditDistanceCheck("", "abc", k),
                similarity::EditDistanceCheck("", "abc", k));
      EXPECT_EQ(simd::EditDistanceCheck("abc", "", k),
                similarity::EditDistanceCheck("abc", "", k));
      EXPECT_EQ(simd::EditDistanceCheck("kitten", "sitting", k),
                similarity::EditDistanceCheck("kitten", "sitting", k));
      EXPECT_EQ(simd::EditDistanceCheck("same", "same", k),
                similarity::EditDistanceCheck("same", "same", k));
    }
    EXPECT_EQ(simd::EditDistanceCheck("abc", "abd", -1),
              similarity::EditDistanceCheck("abc", "abd", -1));
    // Patterns at the 63/64/65-char word boundary (65 leaves bit-parallel).
    for (size_t plen : {63u, 64u, 65u}) {
      std::string p(plen, 'x');
      std::string q = p;
      q[plen / 2] = 'y';
      for (int k : {0, 1, 3}) {
        EXPECT_EQ(simd::EditDistanceCheck(p, q, k),
                  similarity::EditDistanceCheck(p, q, k))
            << "plen=" << plen << " k=" << k;
      }
      EXPECT_EQ(simd::EditDistancePattern(p).bit_parallel(), plen <= 64);
    }
  });
}

TEST(SimdEditDistanceTest, RandomizedAgainstReference) {
  ForEachLevel([](simd::DispatchLevel) {
    std::mt19937 rng(4242);
    for (int iter = 0; iter < 500; ++iter) {
      const std::string a = RandomString(rng, rng() % 80, 3);
      const std::string b = RandomString(rng, rng() % 80, 3);
      const int k = static_cast<int>(rng() % 7);
      EXPECT_EQ(simd::EditDistanceCheck(a, b, k),
                similarity::EditDistanceCheck(a, b, k))
          << "a=" << a << " b=" << b << " k=" << k;
    }
  });
}

TEST(SimdEditDistanceTest, BatchMatchesSingle) {
  ForEachLevel([](simd::DispatchLevel) {
    std::mt19937 rng(31337);
    const std::string pattern = RandomString(rng, 24, 4);
    simd::EditDistancePattern compiled(pattern);
    // Group sizes 1..9 at a few fixed lengths plus random stragglers, so
    // the 4-lane grouping sees full quads, partial quads, and singletons.
    std::vector<std::string> cands;
    for (size_t len : {22u, 23u, 24u, 25u, 26u}) {
      const size_t group = 1 + rng() % 9;
      for (size_t g = 0; g < group; ++g) {
        cands.push_back(RandomString(rng, len, 4));
      }
    }
    for (int i = 0; i < 20; ++i) {
      cands.push_back(RandomString(rng, rng() % 40, 4));
    }
    cands.emplace_back();  // empty candidate
    std::vector<char> chars;
    std::vector<size_t> offsets = {0};
    for (const std::string& c : cands) {
      chars.insert(chars.end(), c.begin(), c.end());
      offsets.push_back(chars.size());
    }
    for (int k : {0, 1, 2, 4}) {
      std::vector<int> out(cands.size(), -2);
      compiled.CheckBatch(chars.data(), offsets.data(), cands.size(), k,
                          out.data());
      for (size_t i = 0; i < cands.size(); ++i) {
        EXPECT_EQ(out[i], similarity::EditDistanceCheck(pattern, cands[i], k))
            << "cand=" << cands[i] << " k=" << k;
      }
    }
    // Pairs form.
    std::vector<int> pair_out(cands.size(), -2);
    simd::EditDistanceCheckPairs(chars.data(), offsets.data(), chars.data(),
                                 offsets.data(), cands.size(), 1,
                                 pair_out.data());
    for (size_t i = 0; i < cands.size(); ++i) {
      EXPECT_EQ(pair_out[i],
                similarity::EditDistanceCheck(cands[i], cands[i], 1));
    }
  });
}

TEST(SimdTOccurrenceTest, MatchesNaiveCountingAndResets) {
  std::mt19937 rng(55);
  simd::TOccurrenceScratch scratch;
  const size_t num_slots = 500;
  for (int iter = 0; iter < 50; ++iter) {
    const size_t num_lists = 1 + rng() % 12;
    std::vector<std::vector<uint32_t>> lists(num_lists);
    std::map<uint32_t, int> naive;
    for (auto& list : lists) {
      // Unique slots per list, like posting lists (unique pks per token).
      std::vector<uint32_t> slots;
      const size_t len = rng() % 60;
      for (size_t i = 0; i < len; ++i) {
        slots.push_back(rng() % num_slots);
      }
      std::sort(slots.begin(), slots.end());
      slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
      for (uint32_t s : slots) ++naive[s];
      list = std::move(slots);
    }
    const int t = 1 + static_cast<int>(rng() % (num_lists + 2));  // may exceed
    std::vector<const uint32_t*> ptrs;
    std::vector<size_t> sizes;
    for (const auto& list : lists) {
      ptrs.push_back(list.data());
      sizes.push_back(list.size());
    }
    scratch.EnsureSlots(num_slots);
    std::vector<uint32_t> result;
    uint64_t pruned = 0;
    simd::TOccurrenceCount(ptrs.data(), sizes.data(), num_lists, t, scratch,
                           &result, &pruned);
    std::vector<uint32_t> expected;
    uint64_t expected_pruned = 0;
    for (const auto& [slot, count] : naive) {
      if (count >= t) {
        expected.push_back(slot);
      } else {
        ++expected_pruned;
      }
    }
    std::sort(result.begin(), result.end());
    EXPECT_EQ(result, expected) << "iter=" << iter << " t=" << t;
    EXPECT_EQ(pruned, expected_pruned);
    // Scratch must be fully reset between probes: every counter back to 0.
    for (uint16_t c : scratch.counts) {
      ASSERT_EQ(c, 0);
    }
    EXPECT_TRUE(scratch.touched.empty());
  }
}

}  // namespace
}  // namespace simdb
