// Tests for the runtime lock-rank deadlock detector (src/analysis/lock_rank)
// and the annotated Mutex/CondVar wrappers that feed it, plus the condvar
// stress regressions from the PR 9 audit (docs/ANALYSIS.md, "Concurrency
// analysis"). The detector is compiled out in plain Release builds; every
// detector test skips itself there (CI's release job instead checks via `nm`
// that no lockrank symbol survives).

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lock_rank.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace simdb {
namespace {

#if SIMDB_LOCK_RANK_CHECKS

// Captures violation reports instead of aborting. Installed/restored per
// test via RAII so an assertion failure cannot leak the capture handler into
// later tests.
std::string* g_last_report = nullptr;

void CaptureHandler(const lockrank::Violation& v) {
  if (g_last_report != nullptr) *g_last_report = v.message;
}

class HandlerCapture {
 public:
  explicit HandlerCapture(std::string* sink) {
    g_last_report = sink;
    previous_ = lockrank::SetHandlerForTest(&CaptureHandler);
  }
  ~HandlerCapture() {
    lockrank::SetHandlerForTest(previous_);
    g_last_report = nullptr;
  }

 private:
  lockrank::Handler previous_;
};

TEST(LockRank, CleanAscendingAcquisitionReportsNothing) {
  const uint64_t before = lockrank::violation_count();
  Mutex outer(lockrank::Rank::kScheduler, "test.outer");
  Mutex inner(lockrank::Rank::kThreadPool, "test.inner");
  {
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);
    std::vector<lockrank::HeldLock> held = lockrank::CurrentThreadHeld();
    ASSERT_EQ(held.size(), 2u);
    EXPECT_STREQ(held[0].name, "test.outer");
    EXPECT_STREQ(held[1].name, "test.inner");
  }
  EXPECT_TRUE(lockrank::CurrentThreadHeld().empty());
  EXPECT_EQ(lockrank::violation_count(), before);
}

// The seeded inversion from the ISSUE: thread 1 establishes the A -> B
// ordering; thread 2 acquires B -> A. The report must carry both cycle
// edges — the acquiring thread's held stack AND the stack under which the
// conflicting mutex was last acquired.
TEST(LockRank, SeededInversionAcrossTwoThreadsReportsBothCycles) {
  std::string report;
  HandlerCapture capture(&report);
  const uint64_t before = lockrank::violation_count();

  Mutex a(lockrank::Rank::kScheduler, "test.rankA");
  Mutex b(lockrank::Rank::kThreadPool, "test.rankB");

  // Thread 1: the legal A -> B nesting (records B's acquire-while-holding-A
  // edge in the detector's per-mutex records).
  std::thread legal([&] {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  });
  legal.join();

  // Thread 2: the inverted B -> A nesting. The detector reports on the
  // acquire of A (before any blocking could deadlock).
  std::thread inverted([&] {
    MutexLock hold_b(b);
    MutexLock hold_a(a);  // rank 400 while holding rank 500: violation
  });
  inverted.join();

  EXPECT_EQ(lockrank::violation_count(), before + 1);
  ASSERT_FALSE(report.empty());
  // This thread's edge: acquiring A while holding B.
  EXPECT_NE(report.find("rank inversion"), std::string::npos) << report;
  EXPECT_NE(report.find("test.rankA"), std::string::npos) << report;
  EXPECT_NE(report.find("while holding rank 500  test.rankB"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("this thread's held stack"), std::string::npos)
      << report;
  // The opposing edge from thread 1: B was last acquired while holding A.
  EXPECT_NE(report.find("opposing cycle edge"), std::string::npos) << report;
  EXPECT_NE(report.find("test.rankB was last acquired while holding"),
            std::string::npos)
      << report;
}

TEST(LockRank, RecursiveAcquisitionOfSameMutexReported) {
  std::string report;
  HandlerCapture capture(&report);
  const uint64_t before = lockrank::violation_count();

  Mutex m(lockrank::Rank::kLeaf, "test.recursive");
  m.Lock();
  // A second Lock() of a non-recursive mutex would self-deadlock; drive the
  // detector hook directly so the test stays deadlock-free while exercising
  // the same-mutex check.
  lockrank::OnAcquire(static_cast<int>(lockrank::Rank::kLeaf),
                      "test.recursive", &m);
  lockrank::OnRelease(&m);
  m.Unlock();

  EXPECT_EQ(lockrank::violation_count(), before + 1);
  EXPECT_NE(report.find("test.recursive"), std::string::npos) << report;
}

TEST(LockRank, EqualRankAcquisitionReported) {
  std::string report;
  HandlerCapture capture(&report);
  const uint64_t before = lockrank::violation_count();

  // Two distinct mutexes of the same rank: ordering between them is
  // undefined, so the strict-ascent rule must flag the nesting.
  Mutex first(lockrank::Rank::kTransport, "test.equal1");
  Mutex second(lockrank::Rank::kTransport, "test.equal2");
  {
    MutexLock hold_first(first);
    MutexLock hold_second(second);
  }
  EXPECT_EQ(lockrank::violation_count(), before + 1);
  EXPECT_NE(report.find("test.equal2"), std::string::npos) << report;
}

// CondVar::Wait must pop the mutex's rank entry for the blocked interval
// (the lock is genuinely released) and re-push it on wakeup, leaving the
// held stack balanced and report-free.
TEST(LockRank, CondVarWaitKeepsHeldStackBalanced) {
  const uint64_t before = lockrank::violation_count();
  Mutex m(lockrank::Rank::kPoolBatch, "test.cv_mutex");
  CondVar cv;

  MutexLock lock(m);
  bool woke = cv.WaitFor(lock, std::chrono::milliseconds(5));
  EXPECT_FALSE(woke);  // nothing notifies; the timeout path re-locks
  std::vector<lockrank::HeldLock> held = lockrank::CurrentThreadHeld();
  ASSERT_EQ(held.size(), 1u);
  EXPECT_STREQ(held[0].name, "test.cv_mutex");
  EXPECT_EQ(lockrank::violation_count(), before);
}

TEST(LockRank, TryLockRecordsRankOnlyOnSuccess) {
  const uint64_t before = lockrank::violation_count();
  Mutex m(lockrank::Rank::kTransport, "test.trylock");

  ASSERT_TRUE(m.TryLock());
  ASSERT_EQ(lockrank::CurrentThreadHeld().size(), 1u);

  std::thread contender([&] {
    EXPECT_FALSE(m.TryLock());
    // The failed TryLock must not leave a phantom entry on this thread.
    EXPECT_TRUE(lockrank::CurrentThreadHeld().empty());
  });
  contender.join();

  m.Unlock();
  EXPECT_TRUE(lockrank::CurrentThreadHeld().empty());
  EXPECT_EQ(lockrank::violation_count(), before);
}

#else  // !SIMDB_LOCK_RANK_CHECKS

TEST(LockRank, CompiledOutInRelease) {
  GTEST_SKIP() << "lock-rank checks are compiled out in this build; the "
                  "release CI job verifies via nm that no detector symbol "
                  "is referenced";
}

#endif  // SIMDB_LOCK_RANK_CHECKS

// Condvar-audit stress regressions (satellite 2). The audit kept
// ThreadPool's Submit -> NotifyOne (homogeneous waiters) and the per-batch
// completion CondVar; these tests are the interleavings that would hang
// within seconds if either choice were wrong — concurrent RunAll batches,
// Submit storms, and RunAll re-entered from inside a pool task. Run with
// the TSan job for the full effect; under the default build the lock-rank
// detector still checks every acquisition.
TEST(ThreadPoolStress, ConcurrentRunAllBatchesDoNotStrandEachOther) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int kTasksPerBatch = 32;
  std::atomic<int> executed{0};

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &executed] {
      for (int round = 0; round < 8; ++round) {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(kTasksPerBatch);
        for (int t = 0; t < kTasksPerBatch; ++t) {
          tasks.push_back([&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
          });
        }
        pool.RunAll(std::move(tasks));
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(executed.load(), kCallers * 8 * kTasksPerBatch);
}

TEST(ThreadPoolStress, SubmitFromInsideTasksAndRunAllFromWorker) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::atomic<int> resubmitted{0};

  // Every task re-submits a child until the budget is spent; one batch task
  // also calls RunAll from a worker thread (the inline-execution path).
  std::vector<std::function<void()>> tasks;
  std::function<void(int)> spawn = [&](int depth) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (depth > 0) {
      resubmitted.fetch_add(1, std::memory_order_relaxed);
      pool.Submit([&spawn, depth] { spawn(depth - 1); });
    }
  };
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&spawn] { spawn(4); });
  }
  tasks.push_back([&pool, &executed] {
    std::vector<std::function<void()>> inner;
    for (int i = 0; i < 8; ++i) {
      inner.push_back([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.RunAll(std::move(inner));  // must run inline, not self-deadlock
  });
  pool.RunAll(std::move(tasks));

  // RunAll only waits for its own batch; submitted children drain on pool
  // shutdown at the latest. Poll until the counters settle.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (executed.load() < 16 * 5 + 8 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(executed.load(), 16 * 5 + 8);
  EXPECT_EQ(resubmitted.load(), 16 * 4);
}

}  // namespace
}  // namespace simdb
