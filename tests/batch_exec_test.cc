// Batch execution path: the columnar/SIMD pipeline must be answer-identical
// to the tuple path, surface its exec.batch.* counters in query profiles,
// and keep the inverted-index posting-cache copy counter at zero (the
// T-occurrence kernel counts directly over the cached dense-slot arrays).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"
#include "core/query_processor.h"
#include "observability/profile.h"
#include "similarity/simd_kernels.h"
#include "storage/file_util.h"
#include "storage/inverted_index.h"

namespace simdb {
namespace {

using adm::Value;

class BatchExecTest : public ::testing::Test {
 protected:
  BatchExecTest() {
    static int counter = 0;
    dir_ = (std::filesystem::temp_directory_path() /
            ("simdb_batch_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    core::EngineOptions options;
    options.data_dir = dir_;
    options.topology = {2, 2};
    options.num_threads = 2;
    engine_ = std::make_unique<core::QueryProcessor>(options);
  }
  ~BatchExecTest() override { storage::RemoveAllBestEffort(dir_); }

  void LoadReviews() {
    ASSERT_TRUE(
        engine_->Execute("create dataset Reviews primary key id;").ok());
    struct Row {
      int64_t id;
      const char* name;
      const char* summary;
    };
    const Row rows[] = {
        {1, "james", "this movie touched my heart"},
        {2, "mary", "great product fantastic gift"},
        {3, "mario", "different than my usual but good"},
        {4, "jamie", "better ever than i expected"},
        {5, "maria", "the best car charger i ever bought"},
        {6, "marla", "great product really fantastic gift"},
        {7, "bob", "xy"},
        {8, "al", "great gift"},
    };
    for (const Row& r : rows) {
      ASSERT_TRUE(engine_
                      ->Insert("Reviews",
                               Value::MakeObject(
                                   {{"id", Value::Int64(r.id)},
                                    {"reviewerName", Value::String(r.name)},
                                    {"summary", Value::String(r.summary)}}))
                      .ok());
    }
    ASSERT_TRUE(
        engine_
            ->Execute(
                "create index nix on Reviews(reviewerName) type ngram(2);"
                "create index smix on Reviews(summary) type keyword;")
            .ok());
  }

  /// Runs a query and returns its sorted JSON rows.
  std::vector<std::string> Run(const std::string& aql) {
    core::QueryResult result;
    Status s = engine_->Execute(aql, &result);
    EXPECT_TRUE(s.ok()) << s.ToString() << "\nquery: " << aql;
    last_ = std::move(result);
    std::vector<std::string> rows;
    for (const Value& v : last_.rows) rows.push_back(v.ToJson());
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  /// Sums a counter across every operator of the last profiled query.
  /// Returns -1 when no operator emitted it at all.
  int64_t ProfileCounter(const std::string& name) {
    if (last_.profile == nullptr) return -1;
    bool found = false;
    uint64_t total = 0;
    for (const obs::OperatorProfile& op : last_.profile->operators) {
      for (const auto& [n, v] : op.counters) {
        if (n == name) {
          found = true;
          total += v;
        }
      }
    }
    return found ? static_cast<int64_t>(total) : -1;
  }

  std::string dir_;
  std::unique_ptr<core::QueryProcessor> engine_;
  core::QueryResult last_;
};

const char* kJaccardSelect =
    "for $t in dataset Reviews where "
    "similarity-jaccard(word-tokens($t.summary), "
    "word-tokens('great product fantastic gift')) >= 0.5 "
    "return $t.id";

const char* kEditDistanceSelect =
    "for $t in dataset Reviews "
    "where edit-distance($t.reviewerName, 'marla') <= 1 "
    "return $t.id";

const char* kJaccardJoin =
    "count(for $o in dataset Reviews for $i in dataset Reviews "
    "where similarity-jaccard(word-tokens($o.summary), "
    "word-tokens($i.summary)) >= 0.5 and $o.id < $i.id "
    "return {'o': $o.id, 'i': $i.id})";

// The batch path keeps the posting-cache copy counter at zero: ScanCount
// counts occurrences directly over the cached dense-slot arrays. Forcing
// batch execution off flips the same searches onto the gather path, which
// must report the copies it makes.
TEST_F(BatchExecTest, PostingCacheCopiesDropToZeroOnBatchPath) {
  LoadReviews();
  engine_->set_profile_queries(true);

  std::vector<std::string> batched = Run(kJaccardSelect);
  ASSERT_NE(last_.profile, nullptr);
  EXPECT_EQ(ProfileCounter("invindex.posting_cache.bytes_copied"), 0);
  // The index probe and the verify SELECT vectorize (plain ASSIGNs in the
  // same plan legitimately report fallback rows).
  EXPECT_GT(ProfileCounter("exec.batch.rows"), 0);

  engine_->set_batch_execution(false);
  std::vector<std::string> tuple = Run(kJaccardSelect);
  EXPECT_GT(ProfileCounter("invindex.posting_cache.bytes_copied"), 0);
  EXPECT_EQ(ProfileCounter("exec.batch.rows"), 0);
  EXPECT_GT(ProfileCounter("exec.batch.fallback_rows"), 0);

  EXPECT_EQ(batched, tuple);
}

// Every batch-capable operator always emits the full exec.batch.* trio when
// profiling (zeros included) — the CI catalogue diff relies on profile
// counter names being a deterministic function of the operators that ran.
TEST_F(BatchExecTest, BatchCounterTrioPresentInProfile) {
  LoadReviews();
  engine_->set_profile_queries(true);
  Run(kJaccardSelect);
  ASSERT_NE(last_.profile, nullptr);
  for (const char* name :
       {"exec.batch.rows", "exec.batch.batches", "exec.batch.fallback_rows"}) {
    EXPECT_GE(ProfileCounter(name), 0) << name << " missing from profile";
  }
  EXPECT_GT(ProfileCounter("exec.batch.batches"), 0);
}

// Batch on/off must be answer-identical across plan shapes: indexed
// selection (Jaccard + edit distance), similarity join, and the three-stage
// join (index joins disabled).
TEST_F(BatchExecTest, BatchAndTupleRowsIdentical) {
  LoadReviews();
  const std::string queries[] = {kJaccardSelect, kEditDistanceSelect,
                                 kJaccardJoin};
  std::vector<std::vector<std::string>> batched;
  for (const std::string& q : queries) batched.push_back(Run(q));
  // Three-stage shape.
  engine_->opt_context().enable_index_join = false;
  batched.push_back(Run(kJaccardJoin));
  engine_->opt_context().enable_index_join = true;

  engine_->set_batch_execution(false);
  std::vector<std::vector<std::string>> tuple;
  for (const std::string& q : queries) tuple.push_back(Run(q));
  engine_->opt_context().enable_index_join = false;
  tuple.push_back(Run(kJaccardJoin));

  ASSERT_EQ(batched.size(), tuple.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], tuple[i]) << "query " << i;
  }
  EXPECT_FALSE(batched[0].empty());
  EXPECT_FALSE(batched[1].empty());
}

// Small batch sizes chunk the pipeline without changing answers.
TEST_F(BatchExecTest, TinyBatchSizeIsAnswerIdentical) {
  LoadReviews();
  std::vector<std::string> big = Run(kJaccardSelect);
  engine_->set_batch_size(2);
  std::vector<std::string> tiny = Run(kJaccardSelect);
  EXPECT_EQ(big, tiny);
  engine_->set_batch_size(1024);
}

// Direct storage-layer check: SearchTOccurrence with a scratch (counter
// array over dense slots) must return exactly the gather path's pks and
// copy nothing, while the gather path reports its copies.
TEST(InvertedIndexBatchTest, ScratchPathMatchesGatherAndCopiesNothing) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_batch_idx_" + std::to_string(::getpid())))
                        .string();
  storage::RemoveAllBestEffort(dir);
  auto index = storage::InvertedIndex::Open(dir);
  ASSERT_TRUE(index.ok());
  std::vector<std::pair<std::string, int64_t>> postings;
  for (int64_t pk = 0; pk < 200; ++pk) {
    postings.emplace_back("tok" + std::to_string(pk % 7), pk);
    postings.emplace_back("tok" + std::to_string((pk + 1) % 7), pk);
    postings.emplace_back("rare" + std::to_string(pk % 31), pk);
  }
  ASSERT_TRUE((*index)->BulkLoad(std::move(postings)).ok());

  const std::vector<std::string> query = {"tok1", "tok2", "tok3", "rare5"};
  for (int t = 1; t <= 3; ++t) {
    storage::InvertedSearchStats gather_stats;
    auto gather = (*index)->SearchTOccurrence(
        query, t, storage::TOccurrenceAlgorithm::kScanCount, &gather_stats);
    ASSERT_TRUE(gather.ok());
    EXPECT_GT(gather_stats.bytes_copied, 0u);

    simd::TOccurrenceScratch scratch;
    storage::InvertedSearchStats batch_stats;
    auto batched = (*index)->SearchTOccurrence(
        query, t, storage::TOccurrenceAlgorithm::kScanCount, &batch_stats,
        /*use_cache=*/true, &scratch);
    ASSERT_TRUE(batched.ok());
    EXPECT_EQ(batch_stats.bytes_copied, 0u);
    EXPECT_EQ(*gather, *batched) << "t=" << t;
    EXPECT_TRUE(std::is_sorted(batched->begin(), batched->end()));
  }
  storage::RemoveAllBestEffort(dir);
}

}  // namespace
}  // namespace simdb
