#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/random.h"
#include "similarity/edit_distance.h"
#include "similarity/jaccard.h"
#include "similarity/tokenizer.h"
#include "storage/catalog.h"
#include "storage/dataset.h"
#include "storage/file_util.h"
#include "storage/inverted_index.h"
#include "storage/key.h"
#include "storage/lsm_index.h"
#include "storage/sorted_run.h"

namespace simdb::storage {
namespace {

using adm::Value;

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("simdb_test_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++)))
                .string();
    SIMDB_CHECK(EnsureDir(path_).ok()) << path_;
  }
  ~TempDir() { RemoveAllBestEffort(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CompositeKey IntKey(int64_t v) { return {Value::Int64(v)}; }

// ---------- keys ----------

TEST(KeyTest, CompareLexicographic) {
  CompositeKey a = {Value::String("x"), Value::Int64(1)};
  CompositeKey b = {Value::String("x"), Value::Int64(2)};
  CompositeKey c = {Value::String("y")};
  EXPECT_LT(CompareKeys(a, b), 0);
  EXPECT_LT(CompareKeys(b, c), 0);
  EXPECT_EQ(CompareKeys(a, a), 0);
  EXPECT_LT(CompareKeys(c, {Value::String("y"), Value::Int64(0)}), 0);
}

TEST(KeyTest, EncodeDecodeRoundTrip) {
  CompositeKey key = {Value::String("tok"), Value::Int64(42),
                      Value::Double(1.5)};
  Result<CompositeKey> back = DecodeKey(EncodeKey(key));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(CompareKeys(key, *back), 0);
}

// ---------- sorted runs ----------

TEST(SortedRunTest, WriteReadScan) {
  TempDir dir;
  std::string path = dir.path() + "/run.dat";
  SortedRunWriter writer(path, /*sparse_interval=*/4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer.Add(EntryKind::kPut, IntKey(i * 2),
                           "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  auto reader = SortedRunReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->entry_count(), 100u);

  auto it = (*reader)->NewIterator(nullptr);
  ASSERT_TRUE(it.ok());
  int count = 0;
  while ((*it)->Valid()) {
    EXPECT_EQ((*it)->key()[0].AsInt64(), count * 2);
    ASSERT_TRUE((*it)->Next().ok());
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST(SortedRunTest, SeekFindsLowerBound) {
  TempDir dir;
  std::string path = dir.path() + "/run.dat";
  SortedRunWriter writer(path, 4);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer.Add(EntryKind::kPut, IntKey(i * 10), "").ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = *SortedRunReader::Open(path);

  for (int64_t probe : {-5, 0, 5, 10, 123, 490, 495}) {
    CompositeKey k = IntKey(probe);
    auto it = *reader->NewIterator(&k);
    if (probe <= 490) {
      ASSERT_TRUE(it->Valid()) << probe;
      int64_t expected = ((probe + 9) / 10) * 10;
      if (probe <= 0) expected = 0;
      EXPECT_EQ(it->key()[0].AsInt64(), expected) << probe;
    } else {
      EXPECT_FALSE(it->Valid());
    }
  }
}

TEST(SortedRunTest, GetPointLookup) {
  TempDir dir;
  std::string path = dir.path() + "/run.dat";
  SortedRunWriter writer(path, 8);
  ASSERT_TRUE(writer.Add(EntryKind::kPut, IntKey(1), "one").ok());
  ASSERT_TRUE(writer.Add(EntryKind::kTombstone, IntKey(2), "").ok());
  ASSERT_TRUE(writer.Add(EntryKind::kPut, IntKey(3), "three").ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = *SortedRunReader::Open(path);

  auto v1 = *reader->Get(IntKey(1));
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->second, "one");
  auto v2 = *reader->Get(IntKey(2));
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->first, EntryKind::kTombstone);
  EXPECT_FALSE((*reader->Get(IntKey(99))).has_value());
}

TEST(SortedRunTest, RejectsOutOfOrder) {
  TempDir dir;
  SortedRunWriter writer(dir.path() + "/run.dat", 8);
  ASSERT_TRUE(writer.Add(EntryKind::kPut, IntKey(5), "").ok());
  EXPECT_FALSE(writer.Add(EntryKind::kPut, IntKey(5), "").ok());
  EXPECT_FALSE(writer.Add(EntryKind::kPut, IntKey(4), "").ok());
}

TEST(SortedRunTest, CorruptFileDetected) {
  TempDir dir;
  std::string path = dir.path() + "/bad.dat";
  ASSERT_TRUE(WriteFileAtomic(path, "garbage").ok());
  EXPECT_FALSE(SortedRunReader::Open(path).ok());
}

// ---------- LSM ----------

TEST(LsmTest, PutGetDelete) {
  TempDir dir;
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm");
  ASSERT_TRUE(lsm->Put(IntKey(1), "a").ok());
  ASSERT_TRUE(lsm->Put(IntKey(2), "b").ok());
  EXPECT_EQ(**lsm->Get(IntKey(1)), "a");
  ASSERT_TRUE(lsm->Delete(IntKey(1)).ok());
  EXPECT_FALSE((*lsm->Get(IntKey(1))).has_value());
  EXPECT_EQ(**lsm->Get(IntKey(2)), "b");
}

TEST(LsmTest, OverwriteKeepsNewest) {
  TempDir dir;
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm");
  ASSERT_TRUE(lsm->Put(IntKey(1), "old").ok());
  ASSERT_TRUE(lsm->Flush().ok());
  ASSERT_TRUE(lsm->Put(IntKey(1), "new").ok());
  EXPECT_EQ(**lsm->Get(IntKey(1)), "new");
  ASSERT_TRUE(lsm->Flush().ok());
  EXPECT_EQ(**lsm->Get(IntKey(1)), "new");
}

TEST(LsmTest, TombstoneSurvivesFlush) {
  TempDir dir;
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm");
  ASSERT_TRUE(lsm->Put(IntKey(1), "x").ok());
  ASSERT_TRUE(lsm->Flush().ok());
  ASSERT_TRUE(lsm->Delete(IntKey(1)).ok());
  ASSERT_TRUE(lsm->Flush().ok());
  EXPECT_FALSE((*lsm->Get(IntKey(1))).has_value());
  auto it = *lsm->NewIterator();
  EXPECT_FALSE(it->Valid());
}

TEST(LsmTest, PersistsAcrossReopen) {
  TempDir dir;
  {
    auto lsm = *LsmIndex::Open(dir.path() + "/lsm");
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(lsm->Put(IntKey(i), std::to_string(i)).ok());
    }
    ASSERT_TRUE(lsm->Flush().ok());
  }
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm");
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(**lsm->Get(IntKey(i)), std::to_string(i));
  }
}

TEST(LsmTest, CompactMergesRunsAndDropsTombstones) {
  TempDir dir;
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm");
  for (int run = 0; run < 4; ++run) {
    for (int i = run * 10; i < run * 10 + 10; ++i) {
      ASSERT_TRUE(lsm->Put(IntKey(i), "v").ok());
    }
    ASSERT_TRUE(lsm->Flush().ok());
  }
  ASSERT_TRUE(lsm->Delete(IntKey(0)).ok());
  ASSERT_TRUE(lsm->Flush().ok());
  EXPECT_GT(lsm->num_runs(), 1u);
  ASSERT_TRUE(lsm->Compact().ok());
  EXPECT_EQ(lsm->num_runs(), 1u);
  EXPECT_FALSE((*lsm->Get(IntKey(0))).has_value());
  EXPECT_TRUE((*lsm->Get(IntKey(39))).has_value());
}

TEST(LsmTest, AutoFlushOnBudget) {
  TempDir dir;
  LsmOptions options;
  options.memtable_budget_bytes = 4096;
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm", options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(lsm->Put(IntKey(i), std::string(64, 'x')).ok());
  }
  EXPECT_GT(lsm->num_runs(), 0u);
  EXPECT_GT(lsm->DiskSizeBytes(), 0u);
}

// Property: LSM behaves like std::map under random put/delete/get/scan.
class LsmModelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LsmModelProperty, MatchesReferenceModel) {
  TempDir dir;
  LsmOptions options;
  options.memtable_budget_bytes = 2048;  // force frequent flushes
  options.max_runs = 3;                  // force compactions
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm", options);
  std::map<int64_t, std::string> model;
  Random rng(GetParam());
  for (int op = 0; op < 2000; ++op) {
    int64_t k = rng.UniformRange(0, 150);
    switch (rng.Uniform(3)) {
      case 0: {
        std::string v = "v" + std::to_string(rng.Uniform(1000));
        ASSERT_TRUE(lsm->Put(IntKey(k), v).ok());
        model[k] = v;
        break;
      }
      case 1:
        ASSERT_TRUE(lsm->Delete(IntKey(k)).ok());
        model.erase(k);
        break;
      default: {
        auto got = *lsm->Get(IntKey(k));
        auto it = model.find(k);
        if (it == model.end()) {
          EXPECT_FALSE(got.has_value()) << "key " << k;
        } else {
          ASSERT_TRUE(got.has_value()) << "key " << k;
          EXPECT_EQ(*got, it->second);
        }
      }
    }
  }
  // Full scan must equal the model.
  auto it = *lsm->NewIterator();
  auto mit = model.begin();
  while (it->Valid()) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it->key()[0].AsInt64(), mit->first);
    EXPECT_EQ(it->value(), mit->second);
    ASSERT_TRUE(it->Next().ok());
    ++mit;
  }
  EXPECT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsmModelProperty,
                         ::testing::Values(1, 22, 333, 4444));

TEST(LsmTest, RangeScanFromLowerBound) {
  TempDir dir;
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm");
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(lsm->Put(IntKey(i), "").ok());
  ASSERT_TRUE(lsm->Flush().ok());
  for (int i = 50; i < 100; ++i) ASSERT_TRUE(lsm->Put(IntKey(i), "").ok());
  CompositeKey lower = IntKey(90);
  auto it = *lsm->NewIterator(&lower);
  int count = 0;
  while (it->Valid()) {
    EXPECT_GE(it->key()[0].AsInt64(), 90);
    ASSERT_TRUE(it->Next().ok());
    ++count;
  }
  EXPECT_EQ(count, 10);
}

TEST(LsmTest, BulkLoadSorted) {
  TempDir dir;
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm");
  std::vector<std::pair<CompositeKey, std::string>> entries;
  for (int i = 0; i < 100; ++i) entries.push_back({IntKey(i), "b"});
  ASSERT_TRUE(lsm->BulkLoadSorted(entries).ok());
  EXPECT_EQ(**lsm->Get(IntKey(50)), "b");
  EXPECT_EQ(lsm->num_runs(), 1u);
}

TEST(LsmTest, SizeTieredPolicyMergesTiers) {
  TempDir dir;
  LsmOptions options;
  options.merge_policy = MergePolicy::kSizeTiered;
  options.max_runs = 3;
  options.tier_min_runs = 3;
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm", options);
  // Produce several similar-size runs; the policy must keep the count
  // bounded without merging everything into one run each time.
  for (int run = 0; run < 10; ++run) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(lsm->Put(IntKey(run * 1000 + i), "v").ok());
    }
    ASSERT_TRUE(lsm->Flush().ok());
  }
  EXPECT_LE(lsm->num_runs(), 6u);
  // All data still visible.
  auto it = *lsm->NewIterator();
  int count = 0;
  while (it->Valid()) {
    ++count;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(count, 200);
}

TEST(LsmTest, SizeTieredKeepsTombstonesUntilFullMerge) {
  TempDir dir;
  LsmOptions options;
  options.merge_policy = MergePolicy::kSizeTiered;
  options.max_runs = 2;
  options.tier_min_runs = 2;
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm", options);
  // Oldest run holds the value.
  ASSERT_TRUE(lsm->Put(IntKey(1), "old").ok());
  ASSERT_TRUE(lsm->Flush().ok());
  // Newer runs: a tombstone plus filler, flushed until tier merges happen
  // among the NEW runs only.
  ASSERT_TRUE(lsm->Delete(IntKey(1)).ok());
  ASSERT_TRUE(lsm->Flush().ok());
  for (int run = 0; run < 4; ++run) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(lsm->Put(IntKey(100 + run * 10 + i), "x").ok());
    }
    ASSERT_TRUE(lsm->Flush().ok());
  }
  // The tombstone must still shadow the old value regardless of which
  // partial merges ran.
  EXPECT_FALSE((*lsm->Get(IntKey(1))).has_value());
  // A full compaction finally drops it.
  ASSERT_TRUE(lsm->Compact().ok());
  EXPECT_EQ(lsm->num_runs(), 1u);
  EXPECT_FALSE((*lsm->Get(IntKey(1))).has_value());
}

// Property: the size-tiered LSM behaves like std::map too.
TEST(LsmTest, SizeTieredMatchesReferenceModel) {
  TempDir dir;
  LsmOptions options;
  options.memtable_budget_bytes = 1024;
  options.max_runs = 3;
  options.merge_policy = MergePolicy::kSizeTiered;
  auto lsm = *LsmIndex::Open(dir.path() + "/lsm", options);
  std::map<int64_t, std::string> model;
  Random rng(77);
  for (int op = 0; op < 1500; ++op) {
    int64_t k = rng.UniformRange(0, 120);
    if (rng.OneIn(3)) {
      ASSERT_TRUE(lsm->Delete(IntKey(k)).ok());
      model.erase(k);
    } else {
      std::string v = "v" + std::to_string(op);
      ASSERT_TRUE(lsm->Put(IntKey(k), v).ok());
      model[k] = v;
    }
  }
  auto it = *lsm->NewIterator();
  auto mit = model.begin();
  while (it->Valid()) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it->key()[0].AsInt64(), mit->first);
    EXPECT_EQ(it->value(), mit->second);
    ASSERT_TRUE(it->Next().ok());
    ++mit;
  }
  EXPECT_EQ(mit, model.end());
}

// ---------- inverted index ----------

TEST(InvertedIndexTest, PaperFigure3Example) {
  // Figure 2/3 of the paper: usernames indexed by 2-grams; query "marla",
  // k=1 => T=2 produces candidates {2,3,5}.
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  std::vector<std::pair<int64_t, std::string>> users = {
      {1, "james"}, {2, "mary"}, {3, "mario"}, {4, "jamie"}, {5, "maria"}};
  for (const auto& [pk, name] : users) {
    ASSERT_TRUE(index
                    ->Insert(similarity::DedupOccurrences(
                                 similarity::GramTokens(name, 2)),
                             pk)
                    .ok());
  }
  std::vector<std::string> query =
      similarity::DedupOccurrences(similarity::GramTokens("marla", 2));
  auto candidates = *index->SearchTOccurrence(query, 2);
  EXPECT_EQ(candidates, (std::vector<int64_t>{2, 3, 5}));
  // Verification keeps only review-id 5 ("maria" within ed 1 of "marla").
  std::vector<int64_t> verified;
  for (int64_t pk : candidates) {
    const std::string& name = users[static_cast<size_t>(pk - 1)].second;
    if (similarity::EditDistanceCheck(name, "marla", 1) >= 0) {
      verified.push_back(pk);
    }
  }
  EXPECT_EQ(verified, (std::vector<int64_t>{5}));
}

TEST(InvertedIndexTest, ScanCountAndHeapMergeAgree) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  Random rng(5);
  std::vector<std::vector<std::string>> docs;
  for (int64_t pk = 0; pk < 200; ++pk) {
    std::vector<std::string> tokens;
    for (uint64_t i = 0, n = 1 + rng.Uniform(8); i < n; ++i) {
      tokens.push_back("t" + std::to_string(rng.Uniform(30)));
    }
    tokens = similarity::DedupOccurrences(tokens);
    docs.push_back(tokens);
    ASSERT_TRUE(index->Insert(tokens, pk).ok());
  }
  for (int q = 0; q < 20; ++q) {
    const std::vector<std::string>& query = docs[rng.Uniform(docs.size())];
    for (int t = 1; t <= 3; ++t) {
      auto scan = *index->SearchTOccurrence(query, t,
                                            TOccurrenceAlgorithm::kScanCount);
      auto heap = *index->SearchTOccurrence(query, t,
                                            TOccurrenceAlgorithm::kHeapMerge);
      EXPECT_EQ(scan, heap) << "t=" << t;
    }
  }
}

TEST(InvertedIndexTest, RejectsNonPositiveT) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  EXPECT_FALSE(index->SearchTOccurrence({"a"}, 0).ok());
}

TEST(InvertedIndexTest, StatsPopulated) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  ASSERT_TRUE(index->Insert({"a", "b"}, 1).ok());
  ASSERT_TRUE(index->Insert({"a"}, 2).ok());
  InvertedSearchStats stats;
  auto result = *index->SearchTOccurrence({"a", "b"}, 1,
                                          TOccurrenceAlgorithm::kScanCount,
                                          &stats);
  EXPECT_EQ(result.size(), 2u);
  EXPECT_EQ(stats.lists_probed, 2u);
  EXPECT_EQ(stats.postings_read, 3u);
  EXPECT_EQ(stats.candidates, 2u);
}

// Property: T-occurrence candidates are a superset of true edit-distance
// answers (no false negatives) whenever T > 0.
class TOccurrenceCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(TOccurrenceCompleteness, NoFalseNegativesForEditDistance) {
  int k = GetParam();
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  Random rng(101);
  std::vector<std::string> names;
  const char* pool[] = {"maria", "mario", "marla", "mary", "jamie",
                        "james", "marcus", "mark", "martha", "marion"};
  for (int64_t pk = 0; pk < 10; ++pk) {
    names.push_back(pool[pk]);
    ASSERT_TRUE(index
                    ->Insert(similarity::DedupOccurrences(
                                 similarity::GramTokens(pool[pk], 2)),
                             pk)
                    .ok());
  }
  for (const char* q : pool) {
    int t = similarity::EditDistanceTOccurrence(
        static_cast<int>(std::string(q).size()), 2, k);
    if (t <= 0) continue;  // corner case: index is not used
    auto candidates = *index->SearchTOccurrence(
        similarity::DedupOccurrences(similarity::GramTokens(q, 2)), t);
    std::set<int64_t> candidate_set(candidates.begin(), candidates.end());
    for (int64_t pk = 0; pk < 10; ++pk) {
      if (similarity::EditDistanceCheck(names[static_cast<size_t>(pk)], q, k) >=
          0) {
        EXPECT_TRUE(candidate_set.count(pk)) << q << " should match " << pk;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, TOccurrenceCompleteness,
                         ::testing::Values(1, 2));

// ---------- dataset / catalog ----------

Value ReviewRecord(int64_t id, const std::string& name,
                   const std::string& summary) {
  return Value::MakeObject({{"id", Value::Int64(id)},
                            {"reviewerName", Value::String(name)},
                            {"summary", Value::String(summary)}});
}

TEST(DatasetTest, InsertAndGet) {
  TempDir dir;
  auto ds = *Dataset::Create(dir.path() + "/ds", {"reviews", "id", 4});
  ASSERT_TRUE(ds->Insert(ReviewRecord(7, "maria", "great product")).ok());
  auto rec = *ds->GetByPk(7);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->GetField("reviewerName").AsString(), "maria");
  EXPECT_FALSE((*ds->GetByPk(8)).has_value());
}

TEST(DatasetTest, AutoGeneratedPk) {
  TempDir dir;
  auto ds = *Dataset::Create(dir.path() + "/ds", {"reviews", "id", 2});
  Value rec = Value::MakeObject({{"summary", Value::String("no pk here")}});
  int64_t pk1 = *ds->Insert(rec);
  int64_t pk2 = *ds->Insert(rec);
  EXPECT_NE(pk1, pk2);
  EXPECT_EQ((*ds->GetByPk(pk1))->GetField("id").AsInt64(), pk1);
}

TEST(DatasetTest, ScanPartitionsCoverAllRecords) {
  TempDir dir;
  auto ds = *Dataset::Create(dir.path() + "/ds", {"reviews", "id", 4});
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ds->Insert(ReviewRecord(i, "n" + std::to_string(i), "s")).ok());
  }
  std::set<int64_t> seen;
  size_t nonempty = 0;
  for (int p = 0; p < 4; ++p) {
    auto records = *ds->ScanPartition(p);
    if (!records.empty()) ++nonempty;
    for (const Value& r : records) seen.insert(r.GetField("id").AsInt64());
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(nonempty, 4u);  // hash partitioning spreads the data
}

TEST(DatasetTest, KeywordIndexSearch) {
  TempDir dir;
  auto ds = *Dataset::Create(dir.path() + "/ds", {"reviews", "id", 2});
  ASSERT_TRUE(ds->Insert(ReviewRecord(1, "a", "great product value")).ok());
  ASSERT_TRUE(ds->Insert(ReviewRecord(2, "b", "nice product")).ok());
  ASSERT_TRUE(ds->Insert(ReviewRecord(3, "c", "awful thing")).ok());
  ASSERT_TRUE(ds->CreateIndex({"smix", "summary",
                               similarity::IndexKind::kKeyword, 2, false})
                  .ok());
  // Probe both partitions for records sharing >= 1 token with the query.
  std::vector<std::string> query = similarity::DedupOccurrences(
      similarity::WordTokens("product quality"));
  std::set<int64_t> found;
  for (int p = 0; p < 2; ++p) {
    auto pks = *ds->inverted_index(p, "smix")->SearchTOccurrence(query, 1);
    found.insert(pks.begin(), pks.end());
  }
  EXPECT_EQ(found, (std::set<int64_t>{1, 2}));
}

TEST(DatasetTest, IndexMaintainedOnInsertAndDelete) {
  TempDir dir;
  auto ds = *Dataset::Create(dir.path() + "/ds", {"reviews", "id", 2});
  ASSERT_TRUE(ds->CreateIndex({"nix", "reviewerName",
                               similarity::IndexKind::kNGram, 2, false})
                  .ok());
  ASSERT_TRUE(ds->Insert(ReviewRecord(10, "maria", "x")).ok());
  std::vector<std::string> query =
      similarity::DedupOccurrences(similarity::GramTokens("maria", 2));
  int p = ds->PartitionOfPk(10);
  EXPECT_EQ((*ds->inverted_index(p, "nix")->SearchTOccurrence(query, 4)).size(),
            1u);
  ASSERT_TRUE(ds->Delete(10).ok());
  EXPECT_TRUE((*ds->inverted_index(p, "nix")->SearchTOccurrence(query, 4))
                  .empty());
  EXPECT_FALSE((*ds->GetByPk(10)).has_value());
}

TEST(DatasetTest, BtreeIndexSearch) {
  TempDir dir;
  auto ds = *Dataset::Create(dir.path() + "/ds", {"reviews", "id", 2});
  ASSERT_TRUE(ds->Insert(ReviewRecord(1, "maria", "x")).ok());
  ASSERT_TRUE(ds->Insert(ReviewRecord(2, "maria", "y")).ok());
  ASSERT_TRUE(ds->Insert(ReviewRecord(3, "james", "z")).ok());
  ASSERT_TRUE(
      ds->CreateIndex({"bt", "reviewerName", similarity::IndexKind::kBtree,
                       0, false})
          .ok());
  std::set<int64_t> found;
  for (int p = 0; p < 2; ++p) {
    auto pks = *ds->BtreeSearch(p, "bt", Value::String("maria"));
    found.insert(pks.begin(), pks.end());
  }
  EXPECT_EQ(found, (std::set<int64_t>{1, 2}));
}

TEST(DatasetTest, FindIndexOnField) {
  TempDir dir;
  auto ds = *Dataset::Create(dir.path() + "/ds", {"reviews", "id", 2});
  ASSERT_TRUE(ds->CreateIndex({"smix", "summary",
                               similarity::IndexKind::kKeyword, 2, false})
                  .ok());
  EXPECT_NE(ds->FindIndexOnField("summary", similarity::IndexKind::kKeyword),
            nullptr);
  EXPECT_EQ(ds->FindIndexOnField("summary", similarity::IndexKind::kNGram),
            nullptr);
  EXPECT_EQ(ds->FindIndexOnField("other", std::nullopt), nullptr);
}

TEST(DatasetTest, DuplicateIndexRejected) {
  TempDir dir;
  auto ds = *Dataset::Create(dir.path() + "/ds", {"reviews", "id", 2});
  IndexSpec spec{"smix", "summary", similarity::IndexKind::kKeyword, 2, false};
  ASSERT_TRUE(ds->CreateIndex(spec).ok());
  EXPECT_FALSE(ds->CreateIndex(spec).ok());
}

TEST(DatasetTest, DiskSizesReported) {
  TempDir dir;
  auto ds = *Dataset::Create(dir.path() + "/ds", {"reviews", "id", 2});
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        ds->Insert(ReviewRecord(i, "name" + std::to_string(i),
                                "summary text number " + std::to_string(i)))
            .ok());
  }
  ASSERT_TRUE(ds->CreateIndex({"smix", "summary",
                               similarity::IndexKind::kKeyword, 2, false})
                  .ok());
  ASSERT_TRUE(ds->FlushAll().ok());
  EXPECT_GT(ds->PrimaryDiskSize(), 0u);
  EXPECT_GT(ds->IndexDiskSize("smix"), 0u);
}

TEST(CatalogTest, CreateFindDrop) {
  TempDir dir;
  Catalog catalog(dir.path());
  auto ds = catalog.CreateDataset({"reviews", "id", 2});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(catalog.Find("reviews"), *ds);
  EXPECT_FALSE(catalog.CreateDataset({"reviews", "id", 2}).ok());
  ASSERT_TRUE(catalog.DropDataset("reviews").ok());
  EXPECT_EQ(catalog.Find("reviews"), nullptr);
  EXPECT_FALSE(catalog.DropDataset("reviews").ok());
}

}  // namespace
}  // namespace simdb::storage
