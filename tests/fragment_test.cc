// Job-fragment dispatch tests: the wire serde (header / closure / result /
// error payloads), the worker-side interpreter's bit-identity with a local
// BuildDestination (rows *and* traffic accounting), the socket transport's
// fragment round trip into a genuinely forked worker process (proven by
// pid), the per-worker cancel ledger, the scheduler's remote-task lease
// callback, and the engine-level seam (tasks_remote / exec.remote.* profile
// counters, answers identical to the modeled backend).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adm/wire.h"
#include "cluster/cost_model.h"
#include "common/thread_pool.h"
#include "core/query_processor.h"
#include "hyracks/exec.h"
#include "hyracks/expr.h"
#include "hyracks/fragment.h"
#include "hyracks/ops_basic.h"
#include "hyracks/ops_exchange.h"
#include "hyracks/ops_scan.h"
#include "observability/metrics.h"
#include "storage/file_util.h"
#include "transport/transport.h"

namespace simdb::hyracks {
namespace {

using adm::Value;

bool RowsEqual(const Rows& a, const Rows& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t c = 0; c < a[i].size(); ++c) {
      if (!(a[i][c] == b[i][c])) return false;
    }
  }
  return true;
}

/// Four partitions of distinct rows; column 0 is the hash/sort key and the
/// rows of each partition are pre-sorted on it so merge-gather is exercised
/// meaningfully.
PartitionedRows MakeInput() {
  PartitionedRows in(4);
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 12; ++i) {
      Tuple row;
      row.push_back(Value::Int64(p + 4 * i));
      row.push_back(Value::String("s" + std::to_string(p) + "_" +
                                  std::to_string(i)));
      in[static_cast<size_t>(p)].push_back(std::move(row));
    }
  }
  return in;
}

// --- Wire serde ------------------------------------------------------------

TEST(FragmentSerdeTest, HeaderRoundTrips) {
  adm::FragmentHeader h;
  h.query_id = 0x1122334455667788ULL;
  h.dst_partition = 3;
  h.num_nodes = 2;
  h.partitions_per_node = 2;
  h.num_groups = 4;
  std::string buf;
  ByteWriter w(&buf);
  adm::EncodeFragmentHeader(h, &w);
  ByteReader r(buf);
  Result<adm::FragmentHeader> back = adm::DecodeFragmentHeader(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->query_id, h.query_id);
  EXPECT_EQ(back->dst_partition, h.dst_partition);
  EXPECT_EQ(back->num_nodes, h.num_nodes);
  EXPECT_EQ(back->partitions_per_node, h.partitions_per_node);
  EXPECT_EQ(back->num_groups, h.num_groups);
}

TEST(FragmentSerdeTest, HeaderRejectsInconsistentTopology) {
  adm::FragmentHeader h;
  h.query_id = 1;
  h.dst_partition = 0;
  h.num_nodes = 2;
  h.partitions_per_node = 2;
  h.num_groups = 3;  // != 2 * 2
  std::string buf;
  ByteWriter w(&buf);
  adm::EncodeFragmentHeader(h, &w);
  ByteReader r(buf);
  EXPECT_FALSE(adm::DecodeFragmentHeader(&r).ok());
}

TEST(FragmentSerdeTest, ClosureRoundTripsAllOperators) {
  adm::FragmentClosure cases[4];
  cases[0].op = adm::FragmentOp::kHash;
  cases[0].columns = {0, 2};
  cases[1].op = adm::FragmentOp::kBroadcast;
  cases[2].op = adm::FragmentOp::kGather;
  cases[3].op = adm::FragmentOp::kMergeGather;
  cases[3].columns = {1, 0};
  cases[3].ascending = {1, 0};
  for (const adm::FragmentClosure& c : cases) {
    std::string buf;
    ByteWriter w(&buf);
    adm::EncodeFragmentClosure(c, &w);
    ByteReader r(buf);
    Result<adm::FragmentClosure> back = adm::DecodeFragmentClosure(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->op, c.op);
    EXPECT_EQ(back->columns, c.columns);
    EXPECT_EQ(back->ascending, c.ascending);
  }
}

TEST(FragmentSerdeTest, ClosureRejectsUnknownOperatorTag) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutU8(99);  // not a FragmentOp
  w.PutU32(0);
  w.PutU32(0);
  ByteReader r(buf);
  EXPECT_FALSE(adm::DecodeFragmentClosure(&r).ok());
}

TEST(FragmentSerdeTest, ErrorPayloadCarriesExactStatus) {
  std::string buf;
  adm::EncodeFragmentError(Status::Corruption("bad bits"), &buf);
  Status s = adm::DecodeFragmentError(buf);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.message(), "bad bits");
  // Malformed payloads decode to Corruption rather than a fake OK.
  EXPECT_EQ(adm::DecodeFragmentError("x").code(), StatusCode::kCorruption);
}

// --- Interpreter vs local build -------------------------------------------

struct OpCase {
  std::string label;
  std::unique_ptr<ExchangeOperator> op;
};

std::vector<OpCase> MakeOpCases() {
  std::vector<OpCase> cases;
  cases.push_back({"hash", std::make_unique<HashExchangeOp>(
                               std::vector<int>{0})});
  cases.push_back({"broadcast", std::make_unique<BroadcastExchangeOp>()});
  cases.push_back({"gather", std::make_unique<GatherOp>()});
  cases.push_back({"merge_gather", std::make_unique<MergeGatherOp>(
                                       std::vector<SortKey>{{0, true}})});
  return cases;
}

/// The remote build must be bit-identical to the local one — same rows in
/// the same order AND the same local/remote byte accounting — for every
/// operator kind and every destination. This is the invariant that keeps the
/// modeled backend a valid differential oracle for fragment dispatch.
TEST(FragmentInterpreterTest, MatchesLocalBuildExactly) {
  PartitionedRows in = MakeInput();
  ExecContext ctx;
  ctx.topology = {2, 2};
  for (OpCase& c : MakeOpCases()) {
    SCOPED_TRACE(c.label);
    Result<ExchangeOperator::Routing> routing = c.op->Route(ctx, in);
    ASSERT_TRUE(routing.ok());
    adm::FragmentClosure closure;
    ASSERT_TRUE(fragment::ClosureFor(*c.op, &closure));
    for (int dst = 0; dst < 4; ++dst) {
      SCOPED_TRACE("dst " + std::to_string(dst));
      OpStats local_stats;
      Result<Rows> local = c.op->BuildDestination(ctx, dst, in, *routing,
                                                  nullptr, &local_stats);
      ASSERT_TRUE(local.ok());
      std::string request;
      size_t slice_rows = 0;
      fragment::EncodeFragmentRequest(ctx.topology, 77, closure, dst, in,
                                      *routing, &request, &slice_rows);
      if (slice_rows == 0) {
        // The caller skips the round trip; the local build must be trivial.
        EXPECT_TRUE(local->empty());
        EXPECT_EQ(local_stats.local_bytes + local_stats.remote_bytes, 0u);
        continue;
      }
      transport::FragmentReply reply = fragment::InterpretFragment(request);
      ASSERT_TRUE(reply.ok) << adm::DecodeFragmentError(reply.payload)
                                   .ToString();
      Result<fragment::RemoteBuildResult> remote =
          fragment::DecodeFragmentResult(reply.payload);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      EXPECT_TRUE(RowsEqual(*local, remote->rows));
      EXPECT_EQ(remote->header.query_id, 77u);
      EXPECT_EQ(remote->header.local_bytes, local_stats.local_bytes);
      EXPECT_EQ(remote->header.remote_bytes, local_stats.remote_bytes);
      EXPECT_EQ(remote->header.remote_transfers,
                local_stats.remote_transfers);
    }
  }
}

TEST(FragmentInterpreterTest, RejectsTrailingGarbage) {
  PartitionedRows in = MakeInput();
  ExecContext ctx;
  ctx.topology = {2, 2};
  HashExchangeOp op(std::vector<int>{0});
  Result<ExchangeOperator::Routing> routing = op.Route(ctx, in);
  ASSERT_TRUE(routing.ok());
  adm::FragmentClosure closure;
  ASSERT_TRUE(fragment::ClosureFor(op, &closure));
  std::string request;
  size_t slice_rows = 0;
  fragment::EncodeFragmentRequest(ctx.topology, 1, closure, 0, in, *routing,
                                  &request, &slice_rows);
  request += "junk";
  transport::FragmentReply reply = fragment::InterpretFragment(request);
  ASSERT_FALSE(reply.ok);
  Status s = adm::DecodeFragmentError(reply.payload);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("trailing"), std::string::npos);
}

// --- Socket transport round trip ------------------------------------------

TEST(TransportFragmentTest, ExecutesInsideForkedWorkerProcess) {
  std::unique_ptr<transport::Transport> t =
      transport::MakeTransport(transport::TransportKind::kSocket, 2);
  ASSERT_TRUE(t->remote_execution());
  PartitionedRows in = MakeInput();
  ExecContext ctx;
  ctx.topology = {2, 2};
  HashExchangeOp op(std::vector<int>{0});
  Result<ExchangeOperator::Routing> routing = op.Route(ctx, in);
  ASSERT_TRUE(routing.ok());
  adm::FragmentClosure closure;
  ASSERT_TRUE(fragment::ClosureFor(op, &closure));
  std::vector<int> pids = t->worker_pids();
  ASSERT_EQ(pids.size(), 2u);
  for (int dst = 0; dst < 4; ++dst) {
    std::string request;
    size_t slice_rows = 0;
    fragment::EncodeFragmentRequest(ctx.topology, 5, closure, dst, in,
                                    *routing, &request, &slice_rows);
    ASSERT_GT(slice_rows, 0u);
    int node = ctx.topology.NodeOfPartition(dst);
    std::string reply;
    double seconds = 0;
    ASSERT_TRUE(t->ExecuteFragment(node, request, &reply, &seconds).ok());
    EXPECT_GT(seconds, 0.0);
    Result<fragment::RemoteBuildResult> remote =
        fragment::DecodeFragmentResult(reply);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    // The destination was produced in another process: the worker stamped
    // its own pid, which is a live worker of this transport — not ours.
    EXPECT_NE(remote->header.worker_pid, static_cast<int64_t>(::getpid()));
    EXPECT_NE(std::find(pids.begin(), pids.end(),
                        static_cast<int>(remote->header.worker_pid)),
              pids.end());
    OpStats local_stats;
    Result<Rows> local =
        op.BuildDestination(ctx, dst, in, *routing, nullptr, &local_stats);
    ASSERT_TRUE(local.ok());
    EXPECT_TRUE(RowsEqual(*local, remote->rows)) << "dst " << dst;
  }
  EXPECT_TRUE(t->Drain().ok());
}

TEST(TransportFragmentTest, CancelLedgerRefusesCancelledQueriesOnly) {
  std::unique_ptr<transport::Transport> t =
      transport::MakeTransport(transport::TransportKind::kSocket, 2);
  PartitionedRows in = MakeInput();
  ExecContext ctx;
  ctx.topology = {2, 2};
  HashExchangeOp op(std::vector<int>{0});
  Result<ExchangeOperator::Routing> routing = op.Route(ctx, in);
  ASSERT_TRUE(routing.ok());
  adm::FragmentClosure closure;
  ASSERT_TRUE(fragment::ClosureFor(op, &closure));
  auto execute = [&](uint64_t query_id) {
    std::string request;
    size_t slice_rows = 0;
    fragment::EncodeFragmentRequest(ctx.topology, query_id, closure, 0, in,
                                    *routing, &request, &slice_rows);
    std::string reply;
    double seconds = 0;
    return t->ExecuteFragment(0, request, &reply, &seconds);
  };
  ASSERT_TRUE(execute(7).ok());
  ASSERT_TRUE(t->CancelFragments(7, /*timeout_seconds=*/5.0).ok());
  Status refused = execute(7);
  EXPECT_EQ(refused.code(), StatusCode::kCancelled);
  EXPECT_NE(refused.message().find("cancelled"), std::string::npos);
  // Other queries — and unattributed query id 0 — are unaffected.
  EXPECT_TRUE(execute(8).ok());
  ASSERT_TRUE(t->CancelFragments(0, /*timeout_seconds=*/5.0).ok());
  EXPECT_TRUE(execute(0).ok());
  EXPECT_TRUE(t->Drain().ok());
}

TEST(TransportFragmentTest, EnvTogglesFragmentDispatchOff) {
  ::setenv("SIMDB_SOCKET_FRAGMENTS", "0", 1);
  std::unique_ptr<transport::Transport> t =
      transport::MakeTransport(transport::TransportKind::kSocket, 1);
  ::unsetenv("SIMDB_SOCKET_FRAGMENTS");
  EXPECT_FALSE(t->remote_execution());
  std::string reply;
  double seconds = 0;
  EXPECT_EQ(t->ExecuteFragment(0, "x", &reply, &seconds).code(),
            StatusCode::kUnsupported);
  // A disabled backend's cancel is a harmless no-op.
  EXPECT_TRUE(t->CancelFragments(42, 1.0).ok());
}

TEST(TransportFragmentTest, NonSocketBackendsHaveNoRemoteExecution) {
  for (transport::TransportKind kind :
       {transport::TransportKind::kModeled,
        transport::TransportKind::kSharedMemory}) {
    std::unique_ptr<transport::Transport> t =
        transport::MakeTransport(kind, 2);
    EXPECT_FALSE(t->remote_execution());
    std::string reply;
    double seconds = 0;
    EXPECT_EQ(t->ExecuteFragment(0, "x", &reply, &seconds).code(),
              StatusCode::kUnsupported);
    EXPECT_TRUE(t->CancelFragments(1, 1.0).ok());
    EXPECT_TRUE(t->worker_pids().empty());
  }
}

// --- Scheduler remote-task leases -----------------------------------------

class IntSourceOp : public PartitionOperator {
 public:
  explicit IntSourceOp(int per_partition) : per_partition_(per_partition) {}
  std::string name() const override { return "INT-SOURCE"; }
  int num_inputs() const override { return 0; }
  Result<Rows> ExecutePartition(ExecContext&, int p,
                                const std::vector<const Rows*>&) override {
    Rows rows;
    for (int i = 0; i < per_partition_; ++i) {
      rows.push_back({Value::Int64(p * 1000 + i)});
    }
    return rows;
  }

 private:
  int per_partition_;
};

TEST(RemoteTaskLeaseTest, EveryBuildReportsOneClosedLease) {
  Job job;
  int src = job.Add(std::make_unique<IntSourceOp>(40), {}, RowSchema({"v"}));
  job.Add(std::make_unique<HashExchangeOp>(std::vector<int>{0}), {src},
          RowSchema({"v"}));

  std::unique_ptr<transport::Transport> t =
      transport::MakeTransport(transport::TransportKind::kSocket, 2);
  ASSERT_TRUE(t->remote_execution());
  ThreadPool pool(4);
  ExecStats stats;
  std::mutex leases_mu;
  std::vector<RemoteTaskLease> leases;
  RemoteLeaseCallback on_complete = [&](const RemoteTaskLease& lease) {
    std::lock_guard<std::mutex> lock(leases_mu);
    leases.push_back(lease);
  };
  ExecContext ctx;
  ctx.pool = &pool;
  ctx.topology = {2, 2};
  ctx.stats = &stats;
  ctx.executor = ExecutorKind::kScheduler;
  ctx.transport = t.get();
  ctx.on_lease_complete = &on_complete;
  Result<PartitionedRows> out = Executor::Run(job, ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // One lease per (exchange destination) kBuild task, each completed ok,
  // each attributed to the cluster node owning its destination partition.
  ASSERT_EQ(leases.size(), 4u);
  std::vector<int> seen_partitions;
  int remote = 0;
  for (const RemoteTaskLease& lease : leases) {
    EXPECT_TRUE(lease.ok);
    EXPECT_EQ(lease.cluster_node,
              ctx.topology.NodeOfPartition(lease.dst_partition));
    seen_partitions.push_back(lease.dst_partition);
    if (lease.remote) {
      ++remote;
      EXPECT_GE(lease.remote_compute_seconds, 0.0);
    }
  }
  std::sort(seen_partitions.begin(), seen_partitions.end());
  EXPECT_EQ(seen_partitions, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_GT(remote, 0);
  EXPECT_EQ(stats.tasks_remote, static_cast<uint64_t>(remote));
  EXPECT_GT(stats.TotalRemoteComputeSeconds(), 0.0);
}

// --- Engine-level seam -----------------------------------------------------

std::string ScratchDir(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("simdb_fragment_test_") + tag + "_" +
           std::to_string(::getpid())))
      .string();
}

void LoadTinyDataset(core::QueryProcessor& engine) {
  ASSERT_TRUE(engine.CreateDataset("D", "id").ok());
  const char* titles[] = {"data base systems", "database system design",
                          "query processing", "similarity query processing",
                          "large scale data", "parallel data management"};
  for (int i = 0; i < 60; ++i) {
    Value rec = Value::MakeObject(
        {{"id", Value::Int64(i)},
         {"title", Value::String(titles[i % 6])},
         {"score", Value::Int64(i % 10)}});
    ASSERT_TRUE(engine.Insert("D", std::move(rec)).ok());
  }
}

constexpr const char* kJoinQuery =
    "set simfunction \"jaccard\"; set simthreshold \"0.5\"; "
    "for $a in dataset('D') for $b in dataset('D') "
    "where word-tokens($a.title) ~= word-tokens($b.title) "
    "and $a.id < $b.id return { \"a\": $a.id, \"b\": $b.id };";

std::vector<std::string> SortedJsonRows(const core::QueryResult& r) {
  std::vector<std::string> rows;
  for (const Value& row : r.rows) rows.push_back(row.ToJson());
  std::sort(rows.begin(), rows.end());
  return rows;
}

uint64_t OpCounterSum(const ExecStats& stats, const std::string& name) {
  uint64_t total = 0;
  for (const OpStats& op : stats.ops) {
    for (const auto& [n, v] : op.counters) {
      if (n == name) total += v;
    }
  }
  return total;
}

/// The acceptance-criteria proof: under the socket backend with fragments
/// enabled, a profiled exchange-heavy query builds at least one destination
/// inside a worker process (tasks_remote and exec.remote.* all nonzero, the
/// transport.fragment.dispatched counter moves) and still answers exactly
/// like the modeled backend.
TEST(EngineFragmentTest, SocketQueryBuildsDestinationsRemotely) {
  std::vector<std::string> expected;
  {
    std::string dir = ScratchDir("modeled");
    storage::RemoveAllBestEffort(dir);
    core::EngineOptions options;
    options.data_dir = dir;
    options.topology = {4, 2};
    options.num_threads = 2;
    options.transport = transport::TransportKind::kModeled;
    core::QueryProcessor engine(options);
    // set_transport bypasses the SIMDB_TRANSPORT env override, so the
    // baseline stays modeled even in the transport-socket CI job.
    engine.set_transport(transport::TransportKind::kModeled);
    LoadTinyDataset(engine);
    core::QueryResult result;
    ASSERT_TRUE(engine.Execute(kJoinQuery, &result).ok());
    expected = SortedJsonRows(result);
    EXPECT_EQ(result.exec.tasks_remote, 0u);
    storage::RemoveAllBestEffort(dir);
  }
  std::string dir = ScratchDir("socket");
  storage::RemoveAllBestEffort(dir);
  core::EngineOptions options;
  options.data_dir = dir;
  options.topology = {4, 2};
  options.num_threads = 2;
  options.transport = transport::TransportKind::kSocket;
  options.profile_queries = true;
  core::QueryProcessor engine(options);
  ASSERT_TRUE(engine.transport_backend()->remote_execution());
  uint64_t dispatched_before = obs::MetricsRegistry::Global()
                                   .GetCounter("transport.fragment.dispatched")
                                   ->value();
  LoadTinyDataset(engine);
  core::QueryResult result;
  ASSERT_TRUE(engine.Execute(kJoinQuery, &result).ok());
  EXPECT_EQ(SortedJsonRows(result), expected);
  EXPECT_TRUE(result.exec.network_measured);
  EXPECT_GT(result.exec.tasks_remote, 0u);
  EXPECT_GT(result.exec.TotalRemoteComputeSeconds(), 0.0);
  EXPECT_GT(OpCounterSum(result.exec, "exec.remote.fragments"), 0u);
  EXPECT_GT(OpCounterSum(result.exec, "exec.remote.rows"), 0u);
  EXPECT_GT(OpCounterSum(result.exec, "exec.remote.bytes"), 0u);
  EXPECT_GT(OpCounterSum(result.exec, "exec.remote.compute_nanos"), 0u);
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("transport.fragment.dispatched")
                ->value(),
            dispatched_before);
  // The cost model surfaces the worker-side compute it was told about.
  cluster::MakespanReport report =
      cluster::ComputeMakespan(result.exec, engine.options().topology);
  EXPECT_TRUE(report.network_measured);
  EXPECT_GT(report.remote_compute_seconds, 0.0);
  EXPECT_NE(cluster::FormatMakespan(report).find("remote compute"),
            std::string::npos);
  EXPECT_TRUE(engine.DrainTransport().ok());
  storage::RemoveAllBestEffort(dir);
}

/// SIMDB_SOCKET_FRAGMENTS=0 must reproduce the PR 8 echo-only behavior:
/// same answers, no remote builds.
TEST(EngineFragmentTest, FragmentsDisabledFallsBackToEchoShipping) {
  std::string dir = ScratchDir("echo");
  storage::RemoveAllBestEffort(dir);
  core::EngineOptions options;
  options.data_dir = dir;
  options.topology = {4, 2};
  options.num_threads = 2;
  options.transport = transport::TransportKind::kSocket;
  ::setenv("SIMDB_SOCKET_FRAGMENTS", "0", 1);
  core::QueryProcessor engine(options);
  ::unsetenv("SIMDB_SOCKET_FRAGMENTS");
  EXPECT_FALSE(engine.transport_backend()->remote_execution());
  LoadTinyDataset(engine);
  core::QueryResult result;
  ASSERT_TRUE(engine.Execute(kJoinQuery, &result).ok());
  EXPECT_TRUE(result.exec.network_measured);
  EXPECT_EQ(result.exec.tasks_remote, 0u);
  EXPECT_TRUE(engine.DrainTransport().ok());
  storage::RemoveAllBestEffort(dir);
}

}  // namespace
}  // namespace simdb::hyracks
