// Observability layer: metrics registry, lock-free trace collector, Chrome
// trace export, per-operator counters on a known 2-node x 2-partition job,
// the end-to-end QueryProfile attached by EngineOptions::profile_queries,
// and a guard that the profile-off path stays cheap.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adm/value.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/query_processor.h"
#include "hyracks/exec.h"
#include "hyracks/expr.h"
#include "hyracks/ops_basic.h"
#include "hyracks/ops_exchange.h"
#include "observability/metrics.h"
#include "observability/profile.h"
#include "observability/trace.h"
#include "storage/file_util.h"

namespace simdb {
namespace {

using adm::Value;

// ---------- metrics ----------

TEST(MetricsTest, CounterBasics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  obs::Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(5);
  h.Observe(1000);
  obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 1006u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 1006.0 / 4);
  // bucket 0 counts v == 0; bucket i counts 2^(i-1) <= v < 2^i.
  ASSERT_GE(s.buckets.size(), 11u);
  EXPECT_EQ(s.buckets[0], 1u);   // 0
  EXPECT_EQ(s.buckets[1], 1u);   // 1
  EXPECT_EQ(s.buckets[3], 1u);   // 4..7
  EXPECT_EQ(s.buckets[10], 1u);  // 512..1023
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(MetricsTest, RegistryStablePointersSnapshotAndJson) {
  obs::MetricsRegistry reg;
  // simdb-lint: metric-name-ok (private registry, throwaway names)
  obs::Counter* a = reg.GetCounter("test.a");
  EXPECT_EQ(a, reg.GetCounter("test.a"));  // simdb-lint: metric-name-ok
  a->Add(7);
  // simdb-lint: metric-name-ok (private registry, throwaway names)
  reg.GetHistogram("test.h")->Observe(12);
  obs::MetricsRegistry::Snapshot snap = reg.Snap();
  EXPECT_EQ(snap.counters.at("test.a"), 7u);
  EXPECT_EQ(snap.histograms.at("test.h").count, 1u);

  Result<Value> json = Value::FromJson(reg.ToJson());
  ASSERT_TRUE(json.ok()) << reg.ToJson();
  ASSERT_TRUE(json->is_object());
  EXPECT_EQ(json->GetField("counters").GetField("test.a").AsInt64(), 7);

  reg.ResetAll();
  obs::MetricsRegistry::Snapshot zeroed = reg.Snap();
  EXPECT_EQ(zeroed.counters.at("test.a"), 0u);  // name stays registered
  EXPECT_EQ(zeroed.histograms.at("test.h").count, 0u);
}

// ---------- trace collector ----------

TEST(TraceTest, MultithreadedRecordDrainsSorted) {
  obs::TraceCollector collector;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&collector, t] {
      for (int i = 0; i < 100; ++i) {
        obs::TraceEvent e;
        e.name = "t" + std::to_string(t);
        e.start_us = t * 1000 + i;
        e.dur_us = 1;
        collector.Record(std::move(e));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  std::vector<obs::TraceEvent> events = collector.Drain();
  EXPECT_EQ(events.size(), 400u);
  EXPECT_EQ(collector.dropped(), 0u);
  EXPECT_TRUE(std::is_sorted(
      events.begin(), events.end(),
      [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
        return a.start_us < b.start_us;
      }));
}

TEST(TraceTest, RingOverflowCountsDroppedAndKeepsNewest) {
  obs::TraceCollector collector(/*per_thread_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    obs::TraceEvent e;
    e.name = "e" + std::to_string(i);
    e.start_us = i;
    collector.Record(std::move(e));
  }
  std::vector<obs::TraceEvent> events = collector.Drain();
  EXPECT_EQ(collector.dropped(), 12u);
  ASSERT_EQ(events.size(), 8u);
  // The newest 8 events survive, oldest-first.
  EXPECT_EQ(events.front().name, "e12");
  EXPECT_EQ(events.back().name, "e19");
}

TEST(TraceTest, ChromeTraceJsonIsValidAndNamesTracks) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent task;
  task.name = "SCAN \"quoted\"";
  task.start_us = 10;
  task.dur_us = 5;
  task.pid = 1;
  task.tid = 0;
  task.args = {{"rows", 42}};
  events.push_back(task);
  obs::TraceEvent net;
  net.category = "network";
  net.name = "HASH-EXCHANGE:net";
  net.start_us = 15;
  net.dur_us = 3;
  net.pid = -1;
  events.push_back(net);

  std::string json = obs::ToChromeTraceJson(events);
  Result<Value> parsed = Value::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << json;
  const Value& trace_events = parsed->GetField("traceEvents");
  ASSERT_TRUE(trace_events.is_array());
  // 2 "X" events + process/thread "M" metadata for both tracks.
  EXPECT_GE(trace_events.AsList().size(), 4u);
  EXPECT_NE(json.find("modeled network"), std::string::npos);
  EXPECT_NE(json.find("node 1"), std::string::npos);
}

// ---------- per-operator accounting on a hand-built 2x2 job ----------

/// Deterministic source: `per_partition` ints per partition.
class IntSourceOp : public hyracks::PartitionOperator {
 public:
  explicit IntSourceOp(int per_partition) : per_partition_(per_partition) {}
  std::string name() const override { return "INT-SOURCE"; }
  int num_inputs() const override { return 0; }
  Result<hyracks::Rows> ExecutePartition(
      hyracks::ExecContext&, int p,
      const std::vector<const hyracks::Rows*>&) override {
    hyracks::Rows rows;
    for (int i = 0; i < per_partition_; ++i) {
      rows.push_back({Value::Int64(p * 1000 + i)});
    }
    return rows;
  }

 private:
  int per_partition_;
};

/// source -> hash exchange -> gather, on 2 nodes x 2 partitions with 10
/// rows per partition: every exchange's tuple counts are known exactly.
hyracks::Job MakeExchangeJob() {
  hyracks::Job job;
  int src = job.Add(std::make_unique<IntSourceOp>(10), {},
                    hyracks::RowSchema({"v"}));
  int hx = job.Add(
      std::make_unique<hyracks::HashExchangeOp>(std::vector<int>{0}), {src},
      hyracks::RowSchema({"v"}));
  job.Add(std::make_unique<hyracks::GatherOp>(), {hx},
          hyracks::RowSchema({"v"}));
  return job;
}

struct ProfiledRun {
  hyracks::ExecStats stats;
  std::vector<obs::TraceEvent> events;
};

ProfiledRun RunProfiled(const hyracks::Job& job, hyracks::ExecutorKind kind) {
  ProfiledRun run;
  obs::TraceCollector collector;
  hyracks::ExecContext ctx;
  ctx.topology = {2, 2};
  ctx.stats = &run.stats;
  ctx.executor = kind;
  ctx.trace = &collector;
  Result<hyracks::PartitionedRows> out = hyracks::Executor::Run(job, ctx);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  run.events = collector.Drain();
  return run;
}

const hyracks::OpStats* FindOp(const hyracks::ExecStats& stats,
                               const std::string& name) {
  for (const hyracks::OpStats& op : stats.ops) {
    if (op.name == name) return &op;
  }
  return nullptr;
}

TEST(ObservabilityTest, ExchangeTupleCountsExactOnKnownJob) {
  hyracks::Job job = MakeExchangeJob();
  for (hyracks::ExecutorKind kind : {hyracks::ExecutorKind::kScheduler,
                                     hyracks::ExecutorKind::kStageSequential}) {
    ProfiledRun run = RunProfiled(job, kind);

    const hyracks::OpStats* src = FindOp(run.stats, "INT-SOURCE");
    ASSERT_NE(src, nullptr);
    EXPECT_EQ(src->stage, 0);
    EXPECT_EQ(src->rows_in, 0u);
    EXPECT_EQ(src->rows_out, 40u);
    EXPECT_EQ(src->partition_rows,
              (std::vector<uint64_t>{10, 10, 10, 10}));

    const hyracks::OpStats* hx = FindOp(run.stats, "HASH-EXCHANGE");
    ASSERT_NE(hx, nullptr);
    EXPECT_EQ(hx->stage, 0);  // the barrier belongs to the producing stage
    EXPECT_EQ(hx->rows_in, 40u);
    EXPECT_EQ(hx->rows_out, 40u);
    uint64_t redistributed = 0;
    for (uint64_t r : hx->partition_rows) redistributed += r;
    EXPECT_EQ(redistributed, 40u);

    const hyracks::OpStats* g = FindOp(run.stats, "GATHER");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->stage, 1);
    EXPECT_EQ(g->rows_in, 40u);
    EXPECT_EQ(g->rows_out, 40u);
    EXPECT_EQ(g->partition_rows, (std::vector<uint64_t>{40, 0, 0, 0}));

    // Span names: per-partition task spans plus route/build exchange spans.
    auto has_event = [&run](const std::string& name) {
      for (const obs::TraceEvent& e : run.events) {
        if (e.name == name) return true;
      }
      return false;
    };
    EXPECT_TRUE(has_event("INT-SOURCE"));
    EXPECT_TRUE(has_event("HASH-EXCHANGE:route"));
    EXPECT_TRUE(has_event("HASH-EXCHANGE:build"));
    EXPECT_TRUE(has_event("GATHER:build"));
  }
}

TEST(ObservabilityTest, ProfileOffCollectsNoCountersOrSpans) {
  hyracks::Job job = MakeExchangeJob();
  hyracks::ExecStats stats;
  hyracks::ExecContext ctx;
  ctx.topology = {2, 2};
  ctx.stats = &stats;
  Result<hyracks::PartitionedRows> out = hyracks::Executor::Run(job, ctx);
  ASSERT_TRUE(out.ok());
  for (const hyracks::OpStats& op : stats.ops) {
    EXPECT_TRUE(op.counters.empty()) << op.name;
  }
}

// ---------- BuildQueryProfile on the hand-built job ----------

TEST(ObservabilityTest, BuildQueryProfileStagesTreeAndTrace) {
  hyracks::Job job = MakeExchangeJob();
  ProfiledRun run = RunProfiled(job, hyracks::ExecutorKind::kScheduler);
  obs::QueryProfile profile =
      obs::BuildQueryProfile(run.stats, {2, 2}, std::move(run.events));
  ASSERT_EQ(profile.operators.size(), 3u);

  std::vector<obs::StageProfile> stages = profile.Stages();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].stage, 0);
  EXPECT_EQ(stages[0].num_ops, 2);  // source + hash exchange
  EXPECT_EQ(stages[1].num_ops, 1);  // gather

  std::string tree = profile.RenderTree();
  EXPECT_NE(tree.find("INT-SOURCE"), std::string::npos);
  EXPECT_NE(tree.find("HASH-EXCHANGE"), std::string::npos);
  EXPECT_NE(tree.find("GATHER"), std::string::npos);
  EXPECT_NE(tree.find("stages:"), std::string::npos);

  Result<Value> json = Value::FromJson(profile.ToJson());
  ASSERT_TRUE(json.ok()) << profile.ToJson();
  EXPECT_EQ(json->GetField("operators").AsList().size(), 3u);

  std::string path =
      (std::filesystem::temp_directory_path() /
       ("simdb_trace_" + std::to_string(::getpid()) + ".json"))
          .string();
  ASSERT_TRUE(profile.ExportTrace(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::filesystem::remove(path);
  Result<Value> trace = Value::FromJson(contents);
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->GetField("traceEvents").is_array());
}

// ---------- end-to-end: profile_queries on a real similarity query ----------

class ObservabilityQueryTest : public ::testing::Test {
 protected:
  ObservabilityQueryTest() {
    static int counter = 0;
    dir_ = (std::filesystem::temp_directory_path() /
            ("simdb_obs_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    core::EngineOptions options;
    options.data_dir = dir_;
    options.topology = {2, 2};
    options.num_threads = 2;
    engine_ = std::make_unique<core::QueryProcessor>(options);
  }
  ~ObservabilityQueryTest() override { storage::RemoveAllBestEffort(dir_); }

  void LoadReviews() {
    ASSERT_TRUE(
        engine_->Execute("create dataset Reviews primary key id;").ok());
    const char* summaries[] = {
        "this movie touched my heart",
        "great product fantastic gift",
        "different than my usual but good",
        "better ever than i expected",
        "the best car charger i ever bought",
        "great product really fantastic gift",
        "great gift",
        "fantastic product great movie",
    };
    int64_t id = 1;
    for (const char* s : summaries) {
      ASSERT_TRUE(engine_
                      ->Insert("Reviews",
                               Value::MakeObject(
                                   {{"id", Value::Int64(id++)},
                                    {"summary", Value::String(s)}}))
                      .ok());
    }
    ASSERT_TRUE(
        engine_
            ->Execute("create index smix on Reviews(summary) type keyword;")
            .ok());
  }

  std::string dir_;
  std::unique_ptr<core::QueryProcessor> engine_;
};

TEST_F(ObservabilityQueryTest, ThreeStageJoinProducesProfile) {
  LoadReviews();
  const std::string query =
      "count(for $o in dataset Reviews for $i in dataset Reviews "
      "where similarity-jaccard(word-tokens($o.summary), "
      "word-tokens($i.summary)) >= 0.5 and $o.id < $i.id "
      "return {'o': $o.id, 'i': $i.id})";

  core::QueryResult plain;
  ASSERT_TRUE(engine_->Execute(query, &plain).ok());
  EXPECT_EQ(plain.profile, nullptr);  // off by default

  // Force the AQL+ three-stage plan (with the keyword index present the
  // optimizer would otherwise pick the surrogate index-NL join).
  engine_->opt_context().enable_index_join = false;
  engine_->set_profile_queries(true);
  core::QueryResult profiled;
  ASSERT_TRUE(engine_->Execute(query, &profiled).ok());
  ASSERT_NE(profiled.profile, nullptr);
  ASSERT_EQ(plain.rows.size(), 1u);
  ASSERT_EQ(profiled.rows.size(), 1u);
  // Profiling only observes; the answer is identical.
  EXPECT_EQ(plain.rows[0].ToJson(), profiled.rows[0].ToJson());

  const obs::QueryProfile& profile = *profiled.profile;
  EXPECT_GE(profile.operators.size(), 5u);
  // The three-stage similarity join spans at least three pipeline stages.
  std::vector<obs::StageProfile> stages = profile.Stages();
  ASSERT_GE(stages.size(), 3u);
  EXPECT_EQ(profile.trace_dropped, 0u);
  EXPECT_FALSE(profile.events.empty());

  // Operator-specific counters surfaced (the join stage reports its build
  // and probe sides at minimum).
  std::vector<std::string> counter_names;
  for (const obs::OperatorProfile& op : profile.operators) {
    for (const auto& [name, value] : op.counters) {
      counter_names.push_back(name);
    }
  }
  EXPECT_FALSE(counter_names.empty());

  std::string tree = profile.RenderTree();
  EXPECT_NE(tree.find("stages:"), std::string::npos);
  EXPECT_NE(tree.find("%"), std::string::npos);

  Result<Value> json = Value::FromJson(profile.ToJson());
  ASSERT_TRUE(json.ok());

  // Registry rollups accumulated under stable names.
  obs::MetricsRegistry::Snapshot snap = obs::MetricsRegistry::Global().Snap();
  EXPECT_GE(snap.counters.at("query.profiled_count"), 1u);
  EXPECT_GE(snap.histograms.at("query.exec_micros").count, 1u);
}

TEST_F(ObservabilityQueryTest, IndexedSelectionReportsInvsearchCounters) {
  LoadReviews();
  engine_->set_profile_queries(true);
  core::QueryResult result;
  ASSERT_TRUE(engine_
                  ->Execute(
                      "for $t in dataset Reviews where "
                      "similarity-jaccard(word-tokens($t.summary), "
                      "word-tokens('great product fantastic gift')) >= 0.5 "
                      "return $t.id",
                      &result)
                  .ok());
  ASSERT_NE(result.profile, nullptr);
  bool has_invsearch = false;
  for (const obs::OperatorProfile& op : result.profile->operators) {
    for (const auto& [name, value] : op.counters) {
      if (name.rfind("invsearch.", 0) == 0) has_invsearch = true;
    }
  }
  EXPECT_TRUE(has_invsearch)
      << "indexed selection did not surface invsearch.* counters:\n"
      << result.profile->RenderTree();
}

// ---------- profile-off overhead guard ----------

TEST(ObservabilityTest, ProfileOffPathStaysCheap) {
  // A long chain of cheap operators maximizes per-task overhead relative to
  // useful work. The profile-off run must not be slower than the profiled
  // run beyond noise — i.e. the off path really is a single dead branch.
  hyracks::Job job;
  int prev = job.Add(std::make_unique<IntSourceOp>(2000), {},
                     hyracks::RowSchema({"v"}));
  for (int i = 0; i < 20; ++i) {
    prev = job.Add(
        std::make_unique<hyracks::AssignOp>(
            std::vector<hyracks::ExprPtr>{*hyracks::Call(
                "add", {hyracks::Col(0, "v"),
                        hyracks::Lit(Value::Int64(1))})},
            std::vector<std::string>{"v"}),
        {prev}, hyracks::RowSchema({"v", "v"}));
    prev = job.Add(
        std::make_unique<hyracks::ProjectOp>(std::vector<int>{1}), {prev},
        hyracks::RowSchema({"v"}));
  }

  auto run_once = [&job](obs::TraceCollector* collector) {
    hyracks::ExecStats stats;
    hyracks::ExecContext ctx;
    ctx.topology = {2, 2};
    ctx.stats = &stats;
    ctx.trace = collector;
    Stopwatch sw;
    Result<hyracks::PartitionedRows> out = hyracks::Executor::Run(job, ctx);
    EXPECT_TRUE(out.ok());
    return sw.ElapsedSeconds();
  };

  constexpr int kRepeats = 7;
  std::vector<double> off_times, on_times;
  run_once(nullptr);  // warm-up
  for (int i = 0; i < kRepeats; ++i) {
    off_times.push_back(run_once(nullptr));
    obs::TraceCollector collector;
    on_times.push_back(run_once(&collector));
  }
  std::sort(off_times.begin(), off_times.end());
  std::sort(on_times.begin(), on_times.end());
  double off_median = off_times[kRepeats / 2];
  double on_median = on_times[kRepeats / 2];
  // Generous noise allowance — the real < 2% figure is measured by
  // bench_profile; this guards against the off path doing profiling work.
  EXPECT_LE(off_median, on_median * 1.35)
      << "off median " << off_median << "s vs profiled median " << on_median
      << "s";
}

}  // namespace
}  // namespace simdb
