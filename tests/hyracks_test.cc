#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "hyracks/exec.h"
#include "hyracks/expr.h"
#include "hyracks/ops_basic.h"
#include "hyracks/ops_exchange.h"
#include "hyracks/ops_group.h"
#include "hyracks/ops_index.h"
#include "hyracks/ops_join.h"
#include "hyracks/ops_scan.h"
#include "storage/file_util.h"

namespace simdb::hyracks {
namespace {

using adm::Value;

class HyracksTest : public ::testing::Test {
 protected:
  HyracksTest() {
    static int counter = 0;
    dir_ = (std::filesystem::temp_directory_path() /
            ("simdb_hyx_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    SIMDB_CHECK(storage::EnsureDir(dir_).ok()) << dir_;
    catalog_ = std::make_unique<storage::Catalog>(dir_);
    pool_ = std::make_unique<ThreadPool>(2);
    ctx_.pool = pool_.get();
    ctx_.catalog = catalog_.get();
    ctx_.topology = {2, 2};  // 2 nodes x 2 partitions
    ctx_.stats = &stats_;
  }
  ~HyracksTest() override { storage::RemoveAllBestEffort(dir_); }

  /// Builds a partitioned input by round-robin over int values.
  PartitionedRows MakeInts(const std::vector<int64_t>& values) {
    PartitionedRows rows(4);
    for (size_t i = 0; i < values.size(); ++i) {
      rows[i % 4].push_back({Value::Int64(values[i])});
    }
    return rows;
  }

  std::vector<int64_t> CollectInts(const PartitionedRows& rows, int col = 0) {
    std::vector<int64_t> out;
    for (const Rows& part : rows) {
      for (const Tuple& t : part) {
        out.push_back(t[static_cast<size_t>(col)].AsInt64());
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  Result<PartitionedRows> RunOp(Operator& op,
                                std::vector<const PartitionedRows*> inputs) {
    OpStats stats;
    return op.Execute(ctx_, inputs, &stats);
  }

  std::string dir_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unique_ptr<ThreadPool> pool_;
  ExecStats stats_;
  ExecContext ctx_;
};

TEST_F(HyracksTest, SchemaLookups) {
  RowSchema s({"a", "b"});
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("z"), -1);
  EXPECT_FALSE(s.Require("z").ok());
  RowSchema c = RowSchema::Concat(s, RowSchema({"c"}));
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.IndexOf("c"), 2);
}

TEST_F(HyracksTest, ExprEvaluation) {
  Tuple row = {Value::Int64(10), Value::String("hi")};
  ExprPtr e = *Call("add", {Col(0, "x"), Lit(Value::Int64(5))});
  EXPECT_EQ((*e->Eval(row)).AsInt64(), 15);
  ExprPtr cmp = *Call("lt", {Col(0, "x"), Lit(Value::Int64(3))});
  EXPECT_FALSE((*cmp->Eval(row)).AsBoolean());
}

TEST_F(HyracksTest, ExprUnknownFunctionFailsAtBuild) {
  EXPECT_FALSE(Call("bogus-fn", {}).ok());
  EXPECT_FALSE(Call("add", {Lit(Value::Int64(1))}).ok());  // arity
}

TEST_F(HyracksTest, FieldAccess) {
  Value rec = Value::MakeObject({{"name", Value::String("x")}});
  Tuple row = {rec};
  FieldAccessExpr fa(Col(0, "r"), "name");
  EXPECT_EQ((*fa.Eval(row)).AsString(), "x");
  FieldAccessExpr missing(Col(0, "r"), "zzz");
  EXPECT_TRUE((*missing.Eval(row)).is_missing());
}

TEST_F(HyracksTest, SelectFilters) {
  PartitionedRows in = MakeInts({1, 2, 3, 4, 5, 6, 7, 8});
  SelectOp op(*Call("gt", {Col(0, "v"), Lit(Value::Int64(4))}));
  auto out = *RunOp(op, {&in});
  EXPECT_EQ(CollectInts(out), (std::vector<int64_t>{5, 6, 7, 8}));
}

TEST_F(HyracksTest, AssignAppendsColumns) {
  PartitionedRows in = MakeInts({1, 2});
  AssignOp op({*Call("mul", {Col(0, "v"), Lit(Value::Int64(10))})}, {"v10"});
  auto out = *RunOp(op, {&in});
  EXPECT_EQ(CollectInts(out, 1), (std::vector<int64_t>{10, 20}));
}

TEST_F(HyracksTest, ProjectReorders) {
  PartitionedRows in(4);
  in[0].push_back({Value::Int64(1), Value::String("a")});
  ProjectOp op({1, 0});
  auto out = *RunOp(op, {&in});
  EXPECT_EQ(out[0][0][0].AsString(), "a");
  EXPECT_EQ(out[0][0][1].AsInt64(), 1);
}

TEST_F(HyracksTest, SortPerPartition) {
  PartitionedRows in(4);
  in[1] = {{Value::Int64(3)}, {Value::Int64(1)}, {Value::Int64(2)}};
  SortOp op({{0, true}});
  auto out = *RunOp(op, {&in});
  EXPECT_EQ(out[1][0][0].AsInt64(), 1);
  EXPECT_EQ(out[1][2][0].AsInt64(), 3);
}

TEST_F(HyracksTest, UnnestWithPosition) {
  PartitionedRows in(4);
  in[0].push_back({Value::MakeArray(
      {Value::String("x"), Value::String("y"), Value::String("z")})});
  UnnestOp op(Col(0, "list"), /*with_position=*/true);
  auto out = *RunOp(op, {&in});
  ASSERT_EQ(out[0].size(), 3u);
  EXPECT_EQ(out[0][0][1].AsString(), "x");
  EXPECT_EQ(out[0][0][2].AsInt64(), 1);  // positions are 1-based
  EXPECT_EQ(out[0][2][2].AsInt64(), 3);
}

TEST_F(HyracksTest, UnnestSkipsMissing) {
  PartitionedRows in(4);
  in[0].push_back({Value::Missing()});
  UnnestOp op(Col(0, "list"), false);
  auto out = *RunOp(op, {&in});
  EXPECT_EQ(RowsCount(out), 0u);
}

TEST_F(HyracksTest, HashExchangeGroupsEqualKeys) {
  PartitionedRows in = MakeInts({1, 2, 3, 1, 2, 3, 1, 2});
  HashExchangeOp op({0});
  OpStats stats;
  auto out = *op.Execute(ctx_, {&in}, &stats);
  // Equal keys must land in the same partition.
  for (int64_t key : {1, 2, 3}) {
    std::set<size_t> parts;
    for (size_t p = 0; p < out.size(); ++p) {
      for (const Tuple& t : out[p]) {
        if (t[0].AsInt64() == key) parts.insert(p);
      }
    }
    EXPECT_EQ(parts.size(), 1u) << "key " << key;
  }
  EXPECT_EQ(CollectInts(out), CollectInts(in));
  EXPECT_GT(stats.local_bytes + stats.remote_bytes, 0u);
}

TEST_F(HyracksTest, BroadcastReplicatesEverywhere) {
  PartitionedRows in = MakeInts({7, 8});
  BroadcastExchangeOp op;
  OpStats stats;
  auto out = *op.Execute(ctx_, {&in}, &stats);
  for (const Rows& part : out) EXPECT_EQ(part.size(), 2u);
  EXPECT_GT(stats.remote_bytes, 0u);  // crosses the 2-node boundary
}

TEST_F(HyracksTest, GatherCollectsIntoPartitionZero) {
  PartitionedRows in = MakeInts({1, 2, 3, 4, 5});
  GatherOp op;
  auto out = *RunOp(op, {&in});
  EXPECT_EQ(out[0].size(), 5u);
  EXPECT_TRUE(out[1].empty() && out[2].empty() && out[3].empty());
}

TEST_F(HyracksTest, MergeGatherKeepsGlobalOrder) {
  PartitionedRows in(4);
  in[0] = {{Value::Int64(1)}, {Value::Int64(5)}};
  in[1] = {{Value::Int64(2)}, {Value::Int64(6)}};
  in[2] = {{Value::Int64(3)}};
  in[3] = {{Value::Int64(0)}, {Value::Int64(4)}};
  MergeGatherOp op({{0, true}});
  auto out = *RunOp(op, {&in});
  ASSERT_EQ(out[0].size(), 7u);
  for (size_t i = 0; i < out[0].size(); ++i) {
    EXPECT_EQ(out[0][i][0].AsInt64(), static_cast<int64_t>(i));
  }
}

TEST_F(HyracksTest, RankAssignNumbersRows) {
  PartitionedRows in(4);
  in[0] = {{Value::String("a")}, {Value::String("b")}};
  RankAssignOp op;
  auto out = *RunOp(op, {&in});
  EXPECT_EQ(out[0][0][1].AsInt64(), 0);
  EXPECT_EQ(out[0][1][1].AsInt64(), 1);
}

TEST_F(HyracksTest, RankAssignRejectsUngatheredInput) {
  PartitionedRows in = MakeInts({1, 2, 3, 4, 5});
  RankAssignOp op;
  EXPECT_FALSE(RunOp(op, {&in}).ok());
}

TEST_F(HyracksTest, HashGroupCountsAndListifies) {
  PartitionedRows in(4);
  // All in one partition so grouping is global.
  in[0] = {{Value::String("a"), Value::Int64(1)},
           {Value::String("b"), Value::Int64(2)},
           {Value::String("a"), Value::Int64(3)}};
  HashGroupOp op({Col(0, "k")},
                 {{AggSpec::Kind::kCount, nullptr, "cnt"},
                  {AggSpec::Kind::kListify, Col(1, "v"), "vals"},
                  {AggSpec::Kind::kSum, Col(1, "v"), "sum"},
                  {AggSpec::Kind::kMin, Col(1, "v"), "min"}});
  auto out = *RunOp(op, {&in});
  ASSERT_EQ(out[0].size(), 2u);
  for (const Tuple& row : out[0]) {
    if (row[0].AsString() == "a") {
      EXPECT_EQ(row[1].AsInt64(), 2);
      EXPECT_EQ(row[2].AsList().size(), 2u);
      EXPECT_EQ(row[3].AsInt64(), 4);
      EXPECT_EQ(row[4].AsInt64(), 1);
    } else {
      EXPECT_EQ(row[1].AsInt64(), 1);
      EXPECT_EQ(row[3].AsInt64(), 2);
    }
  }
}

TEST_F(HyracksTest, HashJoinMatchesEqualKeys) {
  PartitionedRows left(4), right(4);
  left[0] = {{Value::Int64(1), Value::String("l1")},
             {Value::Int64(2), Value::String("l2")}};
  right[0] = {{Value::Int64(2), Value::String("r2")},
              {Value::Int64(3), Value::String("r3")}};
  HashJoinOp op({0}, {0});
  auto out = *RunOp(op, {&left, &right});
  ASSERT_EQ(RowsCount(out), 1u);
  EXPECT_EQ(out[0][0][1].AsString(), "l2");
  EXPECT_EQ(out[0][0][3].AsString(), "r2");
}

TEST_F(HyracksTest, HashJoinSkipsMissingKeys) {
  PartitionedRows left(4), right(4);
  left[0] = {{Value::Missing()}};
  right[0] = {{Value::Missing()}};
  HashJoinOp op({0}, {0});
  auto out = *RunOp(op, {&left, &right});
  EXPECT_EQ(RowsCount(out), 0u);
}

TEST_F(HyracksTest, HashJoinResidualFilters) {
  PartitionedRows left(4), right(4);
  left[0] = {{Value::Int64(1), Value::Int64(10)}};
  right[0] = {{Value::Int64(1), Value::Int64(10)},
              {Value::Int64(1), Value::Int64(99)}};
  HashJoinOp op({0}, {0}, *Call("eq", {Col(1, "lv"), Col(3, "rv")}));
  auto out = *RunOp(op, {&left, &right});
  EXPECT_EQ(RowsCount(out), 1u);
}

TEST_F(HyracksTest, NestedLoopJoinThetaPredicate) {
  PartitionedRows left(4), right(4);
  left[0] = {{Value::Int64(1)}, {Value::Int64(5)}};
  right[0] = {{Value::Int64(3)}};
  NestedLoopJoinOp op(*Call("lt", {Col(0, "l"), Col(1, "r")}));
  auto out = *RunOp(op, {&left, &right});
  ASSERT_EQ(RowsCount(out), 1u);
  EXPECT_EQ(out[0][0][0].AsInt64(), 1);
}

TEST_F(HyracksTest, UnionAllConcatenates) {
  PartitionedRows a = MakeInts({1, 2});
  PartitionedRows b = MakeInts({3});
  UnionAllOp op;
  auto out = *RunOp(op, {&a, &b});
  EXPECT_EQ(CollectInts(out), (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(HyracksTest, LimitCapsRows) {
  PartitionedRows in = MakeInts({1, 2, 3, 4, 5, 6});
  LimitOp op(4);
  auto out = *RunOp(op, {&in});
  EXPECT_EQ(RowsCount(out), 4u);
}

// ---------- storage-backed operators ----------

storage::Dataset* MakeReviews(storage::Catalog& catalog, int partitions) {
  auto ds = *catalog.CreateDataset({"reviews", "id", partitions});
  const char* names[] = {"james", "mary", "mario", "jamie", "maria"};
  const char* summaries[] = {
      "this movie touched my heart", "great product fantastic gift",
      "different than my usual but good", "better ever than i expected",
      "the best car charger i ever bought"};
  for (int64_t i = 0; i < 5; ++i) {
    Value rec = Value::MakeObject({
        {"id", Value::Int64(i + 1)},
        {"reviewerName", Value::String(names[i])},
        {"summary", Value::String(summaries[i])},
    });
    SIMDB_CHECK(ds->Insert(rec).ok());
  }
  SIMDB_CHECK(ds->CreateIndex({"nix", "reviewerName",
                               similarity::IndexKind::kNGram, 2, false})
                  .ok());
  SIMDB_CHECK(ds->CreateIndex({"smix", "summary",
                               similarity::IndexKind::kKeyword, 2, false})
                  .ok());
  return ds;
}

TEST_F(HyracksTest, DataScanReadsAllPartitions) {
  MakeReviews(*catalog_, 4);
  DataScanOp op("reviews");
  auto out = *RunOp(op, {});
  EXPECT_EQ(RowsCount(out), 5u);
}

TEST_F(HyracksTest, DataScanPartitionMismatchFails) {
  auto ds = catalog_->CreateDataset({"tiny", "id", 3});
  ASSERT_TRUE(ds.ok());
  DataScanOp op("tiny");
  EXPECT_FALSE(RunOp(op, {}).ok());
}

TEST_F(HyracksTest, InvertedSearchPlusLookupSelectsSimilarNames) {
  MakeReviews(*catalog_, 4);
  // Plan fragment of Figure 7: constant -> broadcast -> secondary search ->
  // sort pk -> primary lookup -> verify.
  ConstantSourceOp source({{Value::String("marla")}});
  auto rows = *RunOp(source, {});
  BroadcastExchangeOp broadcast;
  auto bcast = *RunOp(broadcast, {&rows});
  InvertedIndexSearchOp search(
      "reviews", "nix", Col(0, "c"),
      {SimSearchSpec::Fn::kEditDistance, 1.0});
  auto candidates = *RunOp(search, {&bcast});
  EXPECT_GE(RowsCount(candidates), 3u);  // mary, mario, maria candidates
  SortOp sort({{1, true}});
  auto sorted = *RunOp(sort, {&candidates});
  PrimaryLookupOp lookup("reviews", 1);
  auto records = *RunOp(lookup, {&sorted});
  SelectOp verify(*Call("edit-distance-check",
                        {*Call("get-field", {Col(2, "rec"),
                                             Lit(Value::String("reviewerName"))}),
                         Col(0, "c"), Lit(Value::Int64(1))}));
  auto verified = *RunOp(verify, {&records});
  ASSERT_EQ(RowsCount(verified), 1u);
  for (const Rows& part : verified) {
    for (const Tuple& t : part) {
      EXPECT_EQ(t[2].GetField("reviewerName").AsString(), "maria");
    }
  }
}

TEST_F(HyracksTest, InvertedSearchSkipsCornerCaseRows) {
  MakeReviews(*catalog_, 4);
  // "ab" with k=2: T = 1 - 2*2 <= 0, so the index path must emit nothing.
  ConstantSourceOp source({{Value::String("ab")}});
  auto rows = *RunOp(source, {});
  BroadcastExchangeOp broadcast;
  auto bcast = *RunOp(broadcast, {&rows});
  InvertedIndexSearchOp search("reviews", "nix", Col(0, "c"),
                               {SimSearchSpec::Fn::kEditDistance, 2.0});
  auto out = *RunOp(search, {&bcast});
  EXPECT_EQ(RowsCount(out), 0u);
}

TEST_F(HyracksTest, BtreeSearchOp) {
  auto ds = *catalog_->CreateDataset({"users", "id", 4});
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(ds->Insert(Value::MakeObject(
                               {{"id", Value::Int64(i)},
                                {"grp", Value::Int64(i % 3)}}))
                    .ok());
  }
  ASSERT_TRUE(
      ds->CreateIndex({"bt", "grp", similarity::IndexKind::kBtree, 0, false})
          .ok());
  ConstantSourceOp source({{Value::Int64(1)}});
  auto rows = *RunOp(source, {});
  BroadcastExchangeOp broadcast;
  auto bcast = *RunOp(broadcast, {&rows});
  BtreeSearchOp search("users", "bt", Col(0, "c"));
  auto out = *RunOp(search, {&bcast});
  EXPECT_EQ(RowsCount(out), 3u);  // ids 1, 4, 7
}

// ---------- executor / job ----------

TEST_F(HyracksTest, ExecutorRunsDagAndShares) {
  MakeReviews(*catalog_, 4);
  Job job;
  int scan = job.Add(std::make_unique<DataScanOp>("reviews"), {},
                     RowSchema({"t"}));
  // Shared node: the scan feeds both a count-ish branch and a pass-through,
  // exercising the replicate/materialize path.
  int assign = job.Add(
      std::make_unique<AssignOp>(
          std::vector<ExprPtr>{ExprPtr(std::make_shared<FieldAccessExpr>(
              Col(0, "t"), "id"))},
          std::vector<std::string>{"id"}),
      {scan}, RowSchema({"t", "id"}));
  int self_join = job.Add(
      std::make_unique<NestedLoopJoinOp>(
          *Call("eq", {Col(1, "id"), Col(3, "id")})),
      {assign, assign}, RowSchema({"t", "id", "t2", "id2"}));
  int gather = job.Add(std::make_unique<GatherOp>(), {self_join},
                       RowSchema({"t", "id", "t2", "id2"}));
  ExecStats stats;
  ctx_.stats = &stats;
  auto out = Executor::Run(job, ctx_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  (void)gather;
  // NL join is local per partition; ids are unique so each record matches
  // itself within its own partition.
  EXPECT_EQ(RowsCount(*out), 5u);
  EXPECT_EQ(stats.ops.size(), 4u);
  EXPECT_GT(stats.wall_seconds, 0.0);
}

TEST_F(HyracksTest, ExecutorReportsOperatorErrors) {
  Job job;
  job.Add(std::make_unique<DataScanOp>("nonexistent"), {}, RowSchema({"t"}));
  auto result = Executor::Run(job, ctx_);
  EXPECT_FALSE(result.ok());
  // Errors name the failing node so multi-operator jobs stay diagnosable.
  EXPECT_NE(result.status().message().find("node 0"), std::string::npos)
      << result.status().ToString();
}

TEST_F(HyracksTest, RunPerPartitionReturnsLowestFailingPartition) {
  // Multiple partitions fail concurrently; the reported error must always be
  // the lowest partition index, independent of thread scheduling and of
  // whether a stats sink is attached.
  OpStats op_stats;
  for (int trial = 0; trial < 20; ++trial) {
    for (OpStats* stats : {static_cast<OpStats*>(nullptr), &op_stats}) {
      Status s = RunPerPartition(ctx_, 4, stats, [&](int p) -> Status {
        if (p >= 1) {
          return Status::Internal("boom " + std::to_string(p));
        }
        return Status::OK();
      });
      ASSERT_FALSE(s.ok());
      EXPECT_EQ(s.message(), "partition 1: boom 1");
    }
  }
}

TEST_F(HyracksTest, RunPerPartitionRecordsTimingsDespiteErrors) {
  OpStats stats;
  Status s = RunPerPartition(ctx_, 4, &stats, [&](int p) -> Status {
    return p == 2 ? Status::Internal("bad partition") : Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "partition 2: bad partition");
  // Every partition ran to completion and recorded its slot.
  ASSERT_EQ(stats.partition_seconds.size(), 4u);
}

TEST_F(HyracksTest, RunPerPartitionZeroPartitionsIsOk) {
  EXPECT_TRUE(RunPerPartition(ctx_, 0, nullptr, [](int) {
                return Status::Internal("never called");
              }).ok());
}

}  // namespace
}  // namespace simdb::hyracks
