// Tests for the static analysis subsystem: hand-crafted invalid plans with
// precise deterministic diagnostics (plan verifier), task-graph
// well-formedness (dag verifier), rewrite-rule contract enforcement, the
// plan JSON serde, and the regressions the verifiers originally surfaced.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "algebricks/jobgen.h"
#include "algebricks/lexpr.h"
#include "algebricks/lop.h"
#include "algebricks/rules.h"
#include "analysis/dag_verifier.h"
#include "analysis/plan_serde.h"
#include "analysis/plan_verifier.h"
#include "analysis/rule_contract.h"
#include "core/query_processor.h"
#include "hyracks/expr.h"
#include "hyracks/ops_basic.h"
#include "hyracks/ops_exchange.h"
#include "hyracks/ops_group.h"
#include "hyracks/ops_scan.h"
#include "hyracks/scheduler.h"
#include "storage/file_util.h"

namespace simdb::analysis {
namespace {

using adm::Value;
using algebricks::LExpr;
using algebricks::LExprPtr;
using algebricks::LOp;
using algebricks::LOpKind;
using algebricks::LOpPtr;

LExprPtr Field(const std::string& var, const std::string& field) {
  return LExpr::Field(LExpr::Var(var), field);
}

LExprPtr IntLit(int64_t v) { return LExpr::Lit(Value::Int64(v)); }

// ---------------------------------------------------------------------------
// Plan verifier: invalid-plan classes with deterministic diagnostics
// ---------------------------------------------------------------------------

TEST(PlanVerifier, AcceptsSimpleValidPlan) {
  LOpPtr plan = algebricks::MakeSelect(
      algebricks::MakeDataScan("D", "d"),
      LExpr::CallF("gt", {Field("d", "len"), IntLit(5)}));
  EXPECT_TRUE(PlanVerifier::Verify(plan).ok());
}

TEST(PlanVerifier, RejectsDanglingVariable) {
  // $x is used by the select but never produced upstream.
  LOpPtr plan = algebricks::MakeSelect(
      algebricks::MakeDataScan("D", "d"),
      LExpr::CallF("gt", {LExpr::Var("x"), IntLit(1)}));
  Status s = PlanVerifier::Verify(plan);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(),
            "plan verifier: SELECT: condition uses unbound variable $x in "
            "gt($x, 1)");
}

TEST(PlanVerifier, RejectsDuplicateBinding) {
  // The assign rebinds $d, which the scan already produces.
  LOpPtr plan = algebricks::MakeAssign(algebricks::MakeDataScan("D", "d"),
                                       {{"d", IntLit(7)}});
  Status s = PlanVerifier::Verify(plan);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "plan verifier: ASSIGN: duplicate variable binding $d");
}

TEST(PlanVerifier, RejectsJaccardDeltaGuardViolation) {
  // A jaccard T-occurrence search with threshold <= 0 would need T = 0; the
  // rewrite rules guard this and the verifier enforces it in every plan.
  hyracks::SimSearchSpec spec;
  spec.fn = hyracks::SimSearchSpec::Fn::kJaccard;
  spec.threshold = 0.0;
  LOpPtr plan = algebricks::MakeIndexSearch(
      algebricks::MakeConstantTuple(), "D", "idx_kw",
      LExpr::Lit(Value::String("needle")), spec, "pk");
  Status s = PlanVerifier::Verify(plan);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("INDEX-SEARCH: jaccard search with threshold"),
            std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("(delta guard)"), std::string::npos);
}

TEST(PlanVerifier, RejectsRankOverNonGatheredInput) {
  LOpPtr plan = algebricks::MakeRank(algebricks::MakeDataScan("D", "d"), "i");
  Status s = PlanVerifier::Verify(plan);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(),
            "plan verifier: RANK: requires a gathered (globally ordered) "
            "input; got DATA-SCAN");
}

TEST(PlanVerifier, AcceptsRankOverOrderBy) {
  LOpPtr plan = algebricks::MakeRank(
      algebricks::MakeOrderBy(algebricks::MakeDataScan("D", "d"),
                              {{Field("d", "id"), true}}),
      "i");
  EXPECT_TRUE(PlanVerifier::Verify(plan).ok());
}

TEST(PlanVerifier, RejectsMisalignedPrimaryLookup) {
  // $pk is computed by an assign, so partition p may hold pks of other
  // partitions; a partition-local primary lookup would drop rows.
  LOpPtr assign = algebricks::MakeAssign(algebricks::MakeDataScan("D", "d"),
                                         {{"pk", Field("d", "id")}});
  LOpPtr plan = algebricks::MakePrimaryLookup(assign, "D", "pk", "rec");
  Status s = PlanVerifier::Verify(plan);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(),
            "plan verifier: PRIMARY-LOOKUP: pk $pk is not partition-aligned "
            "with dataset D");
}

TEST(PlanVerifier, RejectsCyclicPlan) {
  auto a = std::make_shared<LOp>();
  a->kind = LOpKind::kSelect;
  a->expr = LExpr::Lit(Value::Boolean(true));
  auto b = std::make_shared<LOp>();
  b->kind = LOpKind::kSelect;
  b->expr = LExpr::Lit(Value::Boolean(true));
  a->inputs = {b};
  b->inputs = {a};
  Status s = PlanVerifier::Verify(a);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "plan verifier: cycle in logical plan at SELECT");
  // Break the cycle so the shared_ptr pair does not leak under ASan.
  b->inputs.clear();
}

TEST(PlanVerifier, RejectsOverlappingJoinBranches) {
  LOpPtr plan = algebricks::MakeJoin(
      algebricks::MakeDataScan("D", "d"), algebricks::MakeDataScan("E", "d"),
      LExpr::Lit(Value::Boolean(true)));
  Status s = PlanVerifier::Verify(plan);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(),
            "plan verifier: JOIN: variable $d is bound by both join branches");
}

TEST(PlanVerifier, RejectsUnknownFunctionCall) {
  LOpPtr plan = algebricks::MakeSelect(
      algebricks::MakeDataScan("D", "d"),
      LExpr::CallF("no-such-function", {Field("d", "x")}));
  Status s = PlanVerifier::Verify(plan);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("call to unknown function no-such-function"),
            std::string::npos)
      << s.message();
}

TEST(PlanVerifier, RejectsUnionBranchMissingVariable) {
  LOpPtr left = algebricks::MakeProject(algebricks::MakeDataScan("D", "d"),
                                        {"d"});
  LOpPtr right = algebricks::MakeDataScan("E", "e");
  LOpPtr plan = algebricks::MakeUnionAll(left, right, {"d"});
  Status s = PlanVerifier::Verify(plan);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(),
            "plan verifier: UNION-ALL: branch 1 does not produce union "
            "variable $d");
}

// ---------------------------------------------------------------------------
// Dag verifier: task-graph well-formedness
// ---------------------------------------------------------------------------

TEST(DagVerifier, EdgeShape) {
  EXPECT_TRUE(DagVerifier::VerifyEdges(2, {{}, {0}}).ok());

  Status cyclic = DagVerifier::VerifyEdges(2, {{1}, {0}});
  ASSERT_FALSE(cyclic.ok());
  EXPECT_EQ(cyclic.message(),
            "dag verifier: node 0: input 1 is not an earlier node (cycle or "
            "forward edge)");

  Status dangling = DagVerifier::VerifyEdges(1, {{5}});
  ASSERT_FALSE(dangling.ok());
  EXPECT_EQ(dangling.message(),
            "dag verifier: node 0: input 5 does not exist");
}

hyracks::RowSchema Schema(std::vector<std::string> cols) {
  return hyracks::RowSchema(std::move(cols));
}

TEST(DagVerifier, RejectsDoubleConsumerSteal) {
  hyracks::Job job;
  int scan = job.Add(std::make_unique<hyracks::DataScanOp>("D"), {},
                     Schema({"d"}));
  int gather =
      job.Add(std::make_unique<hyracks::GatherOp>(), {scan}, Schema({"d"}));
  job.Add(std::make_unique<hyracks::SelectOp>(
              hyracks::Lit(Value::Boolean(true))),
          {scan}, Schema({"d"}));
  (void)gather;

  // The scheduler's own plan must be legal: the scan has two consumers, so
  // the gather may not steal it.
  std::vector<bool> planned = hyracks::Scheduler::PlannedSteals(job);
  EXPECT_FALSE(planned[static_cast<size_t>(gather)]);
  EXPECT_TRUE(DagVerifier::VerifySteals(job, planned).ok());

  std::vector<bool> illegal(job.nodes().size(), false);
  illegal[static_cast<size_t>(gather)] = true;
  Status s = DagVerifier::VerifySteals(job, illegal);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(),
            "dag verifier: node 1 (GATHER): steals the output of node 0 "
            "which has 2 consumers");
}

TEST(DagVerifier, RejectsWrongPartitionProperty) {
  // A hash group over a raw scan on a multi-partition cluster: equal keys
  // never meet without a hash exchange on the grouping keys.
  hyracks::Job job;
  int scan = job.Add(std::make_unique<hyracks::DataScanOp>("D"), {},
                     Schema({"d"}));
  job.Add(std::make_unique<hyracks::HashGroupOp>(
              std::vector<hyracks::ExprPtr>{hyracks::Col(0, "d")},
              std::vector<hyracks::AggSpec>{}),
          {scan}, Schema({"d"}));

  hyracks::ClusterTopology multi{2, 2};
  Status s = DagVerifier::Verify(job, multi);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.message(),
            "dag verifier: node 1 (HASH-GROUP): input is not "
            "hash-partitioned on the grouping keys");

  // The same job is fine on a single partition (no colocation obligations).
  hyracks::ClusterTopology single{1, 1};
  EXPECT_TRUE(DagVerifier::Verify(job, single).ok());
}

TEST(DagVerifier, AcceptsHashExchangedGroupAndChecksSchemas) {
  hyracks::Job job;
  int scan = job.Add(std::make_unique<hyracks::DataScanOp>("D"), {},
                     Schema({"d"}));
  int exchange = job.Add(
      std::make_unique<hyracks::HashExchangeOp>(std::vector<int>{0}), {scan},
      Schema({"d"}));
  job.Add(std::make_unique<hyracks::HashGroupOp>(
              std::vector<hyracks::ExprPtr>{hyracks::Col(0, "d")},
              std::vector<hyracks::AggSpec>{}),
          {exchange}, Schema({"d"}));
  hyracks::ClusterTopology multi{2, 2};
  EXPECT_TRUE(DagVerifier::Verify(job, multi).ok());
}

TEST(DagVerifier, RejectsSchemaWidthMismatch) {
  hyracks::Job job;
  int scan = job.Add(std::make_unique<hyracks::DataScanOp>("D"), {},
                     Schema({"d"}));
  // Select preserves width, but the declared schema invents a column.
  job.Add(std::make_unique<hyracks::SelectOp>(
              hyracks::Lit(Value::Boolean(true))),
          {scan}, Schema({"d", "ghost"}));
  hyracks::ClusterTopology single{1, 1};
  Status s = DagVerifier::Verify(job, single);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("declared schema has 2 columns, operator "
                             "produces 1"),
            std::string::npos)
      << s.message();
}

// ---------------------------------------------------------------------------
// Plan serde
// ---------------------------------------------------------------------------

TEST(PlanSerde, RoundTripsSharedPlan) {
  // Two selects over one shared join: sharing must survive the round trip.
  LOpPtr join = algebricks::MakeJoin(
      algebricks::MakeDataScan("D", "d"), algebricks::MakeDataScan("E", "e"),
      LExpr::CallF("eq", {Field("d", "id"), Field("e", "id")}));
  LOpPtr gt = algebricks::MakeProject(
      algebricks::MakeSelect(join,
                             LExpr::CallF("gt", {Field("d", "len"), IntLit(5)})),
      {"d"});
  LOpPtr le = algebricks::MakeProject(
      algebricks::MakeSelect(join,
                             LExpr::CallF("le", {Field("d", "len"), IntLit(5)})),
      {"d"});
  LOpPtr plan = algebricks::MakeUnionAll(gt, le, {"d"});

  std::string json = PlanToJson(plan);
  Result<LOpPtr> parsed = PlanFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(PlanToJson(parsed.value()), json);
  EXPECT_EQ(parsed.value()->ToString(), plan->ToString());
  // The join node is reached from both union branches through one pointer.
  EXPECT_EQ(algebricks::CollectSharedNodes(parsed.value()).size(), 1u);
  EXPECT_TRUE(PlanVerifier::Verify(parsed.value()).ok());
}

TEST(PlanSerde, RejectsForwardEdgeAsCycle) {
  // Node 0 references node 1, which is not yet defined: the serialized form
  // of a cyclic plan.
  const std::string json = R"({"version": 1, "root": 1, "nodes": [
    {"id": 0, "kind": "SELECT", "inputs": [1],
     "expr": {"kind": "lit", "value": true}},
    {"id": 1, "kind": "SELECT", "inputs": [0],
     "expr": {"kind": "lit", "value": true}}]})";
  Result<LOpPtr> parsed = PlanFromJson(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find(
                "is not defined by an earlier node"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(PlanSerde, RejectsUnknownKind) {
  const std::string json =
      R"({"version": 1, "root": 0, "nodes": [
          {"id": 0, "kind": "TELEPORT", "inputs": []}]})";
  Result<LOpPtr> parsed = PlanFromJson(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unknown operator kind 'TELEPORT'"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Rule contracts
// ---------------------------------------------------------------------------

/// Deliberately broken rule: narrows a multi-variable project to its first
/// variable, violating the default preserves_output_vars contract.
class DropVarRule : public algebricks::RewriteRule {
 public:
  std::string name() const override { return "drop-var-rule"; }
  Result<bool> Apply(LOpPtr& op, algebricks::OptContext&) override {
    if (op->kind != LOpKind::kProject || op->project_vars.size() < 2) {
      return false;
    }
    op = algebricks::MakeProject(op->inputs[0], {op->project_vars[0]});
    return true;
  }
};

TEST(RuleContract, ReportsOffendingRuleWithDiff) {
  LOpPtr plan = algebricks::MakeProject(
      algebricks::MakeAssign(algebricks::MakeDataScan("D", "d"),
                             {{"x", Field("d", "len")}}),
      {"d", "x"});

  algebricks::RuleSet set;
  set.name = "broken";
  set.rules = {std::make_shared<DropVarRule>()};

  RuleContractChecker checker(nullptr);
  algebricks::OptContext ctx;
  ctx.check_hook = &checker;
  Result<bool> changed = algebricks::ApplyRuleSet(plan, set, ctx);
  ASSERT_FALSE(changed.ok());
  const std::string& msg = changed.status().message();
  EXPECT_NE(msg.find("rule 'drop-var-rule' dropped output variable $x"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("seed plan:"), std::string::npos);
  EXPECT_NE(msg.find("minimized diff:"), std::string::npos);
  // The diff is minimized to the changed lines: both renderings of the
  // project edge appear, prefixed with -/+.
  EXPECT_NE(msg.find("- PROJECT"), std::string::npos);
  EXPECT_NE(msg.find("+ PROJECT"), std::string::npos);
}

TEST(RuleContract, CleanRuleSetPassesUnderChecker) {
  LOpPtr join = algebricks::MakeJoin(
      algebricks::MakeDataScan("D", "d"), algebricks::MakeDataScan("E", "e"),
      LExpr::CallF("eq", {Field("d", "id"), Field("e", "id")}));
  LOpPtr plan = algebricks::MakeSelect(
      join, LExpr::CallF("gt", {Field("d", "len"), IntLit(5)}));

  algebricks::RuleSet set;
  set.name = "normalize";
  set.rules = {algebricks::MakePushSelectIntoJoinRule(),
               algebricks::MakePushSelectBelowJoinRule(),
               algebricks::MakeRemoveTrivialSelectRule()};

  RuleContractChecker checker(nullptr);
  algebricks::OptContext ctx;
  ctx.check_hook = &checker;
  Result<bool> changed = algebricks::ApplyRuleSet(plan, set, ctx);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(changed.value());
  EXPECT_TRUE(PlanVerifier::Verify(plan).ok());
}

// ---------------------------------------------------------------------------
// Regressions surfaced by the verifiers
// ---------------------------------------------------------------------------

TEST(RuleContract, SelectMergeSkipsSharedJoin) {
  // Regression: PushSelectIntoJoin used to merge an outer select's condition
  // into a join shared by another parent (the index-join corner split shares
  // the join pipeline between gt/le selects). Merging both contradictory
  // conditions into the shared node emptied both branches.
  LOpPtr join = algebricks::MakeJoin(
      algebricks::MakeDataScan("D", "d"), algebricks::MakeDataScan("E", "e"),
      LExpr::CallF("eq", {Field("d", "id"), Field("e", "id")}));
  LOpPtr gt = algebricks::MakeProject(
      algebricks::MakeSelect(join,
                             LExpr::CallF("gt", {Field("d", "len"), IntLit(5)})),
      {"d"});
  LOpPtr le = algebricks::MakeProject(
      algebricks::MakeSelect(join,
                             LExpr::CallF("le", {Field("d", "len"), IntLit(5)})),
      {"d"});
  LOpPtr plan = algebricks::MakeUnionAll(gt, le, {"d"});

  const std::string join_cond_before = join->expr->ToString();

  algebricks::RuleSet set;
  set.name = "normalize";
  set.rules = {algebricks::MakePushSelectIntoJoinRule()};
  algebricks::OptContext ctx;
  Result<bool> changed = algebricks::ApplyRuleSet(plan, set, ctx);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();

  // The shared join's condition is untouched and both selects survive.
  EXPECT_EQ(join->expr->ToString(), join_cond_before);
  ASSERT_EQ(plan->inputs[0]->inputs[0]->kind, LOpKind::kSelect);
  ASSERT_EQ(plan->inputs[1]->inputs[0]->kind, LOpKind::kSelect);
  EXPECT_TRUE(PlanVerifier::Verify(plan).ok());
}

TEST(RuleContract, SelectMergeStillFiresOnUnsharedJoin) {
  LOpPtr plan = algebricks::MakeSelect(
      algebricks::MakeJoin(algebricks::MakeDataScan("D", "d"),
                           algebricks::MakeDataScan("E", "e"),
                           LExpr::CallF("eq",
                                        {Field("d", "id"), Field("e", "id")})),
      LExpr::CallF("gt", {Field("d", "len"), IntLit(5)}));

  algebricks::RuleSet set;
  set.name = "normalize";
  set.rules = {algebricks::MakePushSelectIntoJoinRule()};
  algebricks::OptContext ctx;
  Result<bool> changed = algebricks::ApplyRuleSet(plan, set, ctx);
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(changed.value());
  EXPECT_EQ(plan->kind, LOpKind::kJoin);
}

TEST(DagVerifier, MaterializedAssignSchemaIncludesAppendedColumns) {
  // Regression: the job generator attached the assign node's schema before
  // widening the plan, so materialized group-by keys were missing from the
  // declared schema.
  LOpPtr plan = algebricks::MakeGroupBy(
      algebricks::MakeDataScan("D", "d"), {{"g", Field("d", "cat")}},
      {{algebricks::LAgg::Kind::kCount, nullptr, "c"}});

  hyracks::Job job;
  algebricks::JobGenerator jobgen;
  ASSERT_TRUE(jobgen.Generate(plan, &job).ok());

  bool saw_assign = false;
  for (size_t i = 0; i < job.nodes().size(); ++i) {
    const hyracks::Job::Node& node = job.nodes()[i];
    const auto* assign = dynamic_cast<const hyracks::AssignOp*>(node.op.get());
    if (assign == nullptr) continue;
    saw_assign = true;
    EXPECT_EQ(node.schema.size(),
              job.schema(node.inputs[0]).size() + assign->exprs().size());
  }
  EXPECT_TRUE(saw_assign);

  hyracks::ClusterTopology multi{2, 2};
  EXPECT_TRUE(DagVerifier::Verify(job, multi).ok());
}

// ---------------------------------------------------------------------------
// End-to-end: engine with verify_plans enabled
// ---------------------------------------------------------------------------

TEST(VerifiedEngine, SimilarityQueriesPassVerification) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("simdb_verify_" + std::to_string(::getpid())))
                        .string();
  storage::RemoveAllBestEffort(dir);
  core::EngineOptions options;
  options.data_dir = dir;
  options.topology = {2, 2};
  options.num_threads = 2;
  options.verify_plans = true;
  core::QueryProcessor engine(options);

  ASSERT_TRUE(engine
                  .Execute("create dataset R primary key id;"
                           "create index R_kw on R(summary) type keyword;"
                           "create index R_ng on R(name) type ngram(2);")
                  .ok());
  const char* names[] = {"james", "jamie", "mary", "maria", "marla"};
  const char* summaries[] = {
      "great product fantastic gift", "great product really fantastic gift",
      "this movie touched my heart", "the best charger i ever bought",
      "great gift"};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine
                    .Insert("R", Value::MakeObject(
                                     {{"id", Value::Int64(i + 1)},
                                      {"name", Value::String(names[i])},
                                      {"summary", Value::String(summaries[i])}}))
                    .ok());
  }

  core::QueryResult result;
  Status jaccard = engine.Execute(
      "set simfunction \"jaccard\"; set simthreshold \"0.5\";"
      "for $r in dataset R "
      "where word-tokens($r.summary) ~= word-tokens(\"great fantastic "
      "product gift\") return $r.id;",
      &result);
  ASSERT_TRUE(jaccard.ok()) << jaccard.ToString();
  EXPECT_FALSE(result.rows.empty());

  Status ed_join = engine.Execute(
      "set simfunction \"edit-distance\"; set simthreshold \"2\";"
      "for $a in dataset R for $b in dataset R "
      "where $a.name ~= $b.name and $a.id < $b.id "
      "return {\"a\": $a.id, \"b\": $b.id};",
      &result);
  ASSERT_TRUE(ed_join.ok()) << ed_join.ToString();
  EXPECT_FALSE(result.rows.empty());

  storage::RemoveAllBestEffort(dir);
}

}  // namespace
}  // namespace simdb::analysis
