// Differential testing: for randomly generated datasets and similarity
// predicates, every physical strategy the optimizer can pick (scan, index
// select, index-nested-loop join with/without surrogate, three-stage join,
// nested loop) must return the same answer. This is the system-level
// counterpart of the per-module property tests.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "core/query_processor.h"
#include "datagen/textgen.h"
#include "storage/file_util.h"

namespace simdb::core {
namespace {

using adm::Value;

class PlanEquivalence : public ::testing::TestWithParam<uint64_t> {
 protected:
  PlanEquivalence() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("simdb_fuzz_" + std::to_string(::getpid()) + "_" +
             std::to_string(GetParam())))
               .string();
    EngineOptions options;
    options.data_dir = dir_;
    options.topology = {2, 2};
    options.num_threads = 2;
    engine_ = std::make_unique<QueryProcessor>(options);
  }
  ~PlanEquivalence() override { storage::RemoveAllBestEffort(dir_); }

  int64_t RunCount(const std::string& aql) {
    QueryResult result;
    Status s = engine_->Execute(aql, &result);
    EXPECT_TRUE(s.ok()) << s.ToString() << "\nquery: " << aql;
    if (!s.ok() || result.rows.size() != 1 || !result.rows[0].is_int64()) {
      return -1;
    }
    return result.rows[0].AsInt64();
  }

  std::string dir_;
  std::unique_ptr<QueryProcessor> engine_;
};

TEST_P(PlanEquivalence, SelectionPlansAgree) {
  Random rng(GetParam());
  datagen::TextProfile profile = datagen::AmazonProfile();
  profile.vocab_size = 60;  // small vocabulary -> dense similarity space
  profile.near_duplicate_rate = 0.4;
  profile.name_typo_rate = 0.6;
  datagen::TextDatasetGenerator gen(profile, GetParam());
  ASSERT_TRUE(engine_
                  ->Execute("create dataset D primary key id;"
                            "create index kw on D(summary) type keyword;"
                            "create index ng on D(reviewerName) type ngram(2);")
                  .ok());
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(engine_->Insert("D", gen.NextRecord(i)).ok());
  }
  datagen::WorkloadSampler texts(gen.texts(), GetParam() * 3 + 1);
  datagen::WorkloadSampler names(gen.names(), GetParam() * 5 + 1);

  for (int iter = 0; iter < 6; ++iter) {
    std::string query;
    if (rng.OneIn(2)) {
      double delta = 0.2 + 0.2 * static_cast<double>(rng.Uniform(4));
      auto v = texts.SampleWithMinWords(1);
      ASSERT_TRUE(v.ok());
      query = "count(for $t in dataset D where "
              "similarity-jaccard(word-tokens($t.summary), word-tokens('" +
              *v + "')) >= " + std::to_string(delta) + " return $t)";
    } else {
      int k = 1 + static_cast<int>(rng.Uniform(3));
      auto v = names.SampleWithMinChars(3);
      ASSERT_TRUE(v.ok());
      query = "count(for $t in dataset D where "
              "edit-distance($t.reviewerName, '" + *v +
              "') <= " + std::to_string(k) + " return $t)";
    }
    engine_->opt_context().enable_index_select = true;
    int64_t indexed = RunCount(query);
    engine_->opt_context().enable_index_select = false;
    int64_t scan = RunCount(query);
    engine_->opt_context().enable_index_select = true;
    EXPECT_EQ(indexed, scan) << query;
  }
}

TEST_P(PlanEquivalence, JoinPlansAgree) {
  Random rng(GetParam() + 1000);
  datagen::TextProfile profile = datagen::TwitterProfile();
  profile.vocab_size = 40;
  profile.near_duplicate_rate = 0.4;
  profile.name_typo_rate = 0.6;
  profile.avg_words = 4;
  datagen::TextDatasetGenerator gen(profile, GetParam() + 7);
  ASSERT_TRUE(engine_
                  ->Execute("create dataset D primary key id;"
                            "create index kw on D(text) type keyword;"
                            "create index ng on D(user_name) type ngram(2);")
                  .ok());
  for (int64_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(engine_->Insert("D", gen.NextRecord(i)).ok());
  }

  for (int iter = 0; iter < 3; ++iter) {
    bool jaccard = rng.OneIn(2);
    std::string query;
    if (jaccard) {
      double delta = 0.4 + 0.2 * static_cast<double>(rng.Uniform(3));
      query = "count(for $o in dataset D for $i in dataset D where "
              "similarity-jaccard(word-tokens($o.text), "
              "word-tokens($i.text)) >= " + std::to_string(delta) +
              " and $o.id < $i.id return {'o': $o.id})";
    } else {
      int k = 1 + static_cast<int>(rng.Uniform(2));
      query = "count(for $o in dataset D for $i in dataset D where "
              "edit-distance($o.user_name, $i.user_name) <= " +
              std::to_string(k) +
              " and $o.id < $i.id return {'o': $o.id})";
    }
    auto& opt = engine_->opt_context();
    std::vector<int64_t> answers;
    // index join with surrogate
    opt.enable_index_join = true;
    opt.enable_surrogate_join = true;
    opt.enable_three_stage_join = true;
    answers.push_back(RunCount(query));
    // index join without surrogate
    opt.enable_surrogate_join = false;
    answers.push_back(RunCount(query));
    opt.enable_surrogate_join = true;
    // three-stage (jaccard) or NL (edit distance)
    opt.enable_index_join = false;
    answers.push_back(RunCount(query));
    // pure nested loop
    opt.enable_three_stage_join = false;
    answers.push_back(RunCount(query));
    opt.enable_index_join = true;
    opt.enable_three_stage_join = true;
    for (size_t i = 1; i < answers.size(); ++i) {
      EXPECT_EQ(answers[i], answers[0]) << "variant " << i << ": " << query;
    }
    EXPECT_GE(answers[0], 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace simdb::core
