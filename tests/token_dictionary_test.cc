// TokenDictionary and decoded-posting-list-cache coverage: id round-trips,
// frequency-ordered id assignment, unknown-token probes, cache hit/miss
// accounting, bounded eviction, and — critically — invalidation after
// Insert/Remove/BulkLoad (a stale cache must fail here, not in production).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "common/logging.h"
#include "storage/file_util.h"
#include "storage/inverted_index.h"
#include "storage/token_dictionary.h"

namespace simdb::storage {
namespace {

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             ("simdb_tokdict_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++)))
                .string();
    SIMDB_CHECK(EnsureDir(path_).ok()) << path_;
  }
  ~TempDir() { RemoveAllBestEffort(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ---------- TokenDictionary ----------

TEST(TokenDictionaryTest, RoundTrip) {
  TokenDictionary dict;
  uint32_t a = dict.GetOrAssign("apple");
  uint32_t b = dict.GetOrAssign("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.GetOrAssign("apple"), a);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.TokenOf(a), "apple");
  EXPECT_EQ(dict.TokenOf(b), "banana");
  ASSERT_TRUE(dict.Lookup("banana").has_value());
  EXPECT_EQ(*dict.Lookup("banana"), b);
}

TEST(TokenDictionaryTest, UnknownTokenLookup) {
  TokenDictionary dict;
  dict.GetOrAssign("known");
  EXPECT_FALSE(dict.Lookup("unknown").has_value());
  EXPECT_FALSE(TokenDictionary().Lookup("anything").has_value());
}

TEST(TokenDictionaryTest, FrequencyOrderAscendingWithTokenTiebreak) {
  TokenDictionary dict;
  dict.BuildFrequencyOrdered({{"common", 10},
                              {"rare", 1},
                              {"mid", 5},
                              {"also-rare", 1}});
  // Ascending frequency; equal counts ordered by token text.
  EXPECT_EQ(dict.TokenOf(0), "also-rare");
  EXPECT_EQ(dict.TokenOf(1), "rare");
  EXPECT_EQ(dict.TokenOf(2), "mid");
  EXPECT_EQ(dict.TokenOf(3), "common");
  EXPECT_EQ(dict.size(), 4u);
}

TEST(TokenDictionaryTest, RebuildIsStable) {
  // The same census produces the same ids regardless of input order.
  std::vector<std::pair<std::string, uint64_t>> counts = {
      {"x", 3}, {"y", 1}, {"z", 3}, {"w", 2}};
  TokenDictionary d1, d2;
  d1.BuildFrequencyOrdered(counts);
  std::reverse(counts.begin(), counts.end());
  d2.BuildFrequencyOrdered(counts);
  ASSERT_EQ(d1.size(), d2.size());
  for (uint32_t id = 0; id < d1.size(); ++id) {
    EXPECT_EQ(d1.TokenOf(id), d2.TokenOf(id));
  }
}

// ---------- InvertedIndex dictionary integration ----------

TEST(InvertedIndexDictionaryTest, BulkLoadBuildsFrequencyOrder) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  // "hot" on 3 records, "warm" on 2, "cold" on 1.
  ASSERT_TRUE(index
                  ->BulkLoad({{"hot", 1},
                              {"hot", 2},
                              {"hot", 3},
                              {"warm", 1},
                              {"warm", 2},
                              {"cold", 3}})
                  .ok());
  const TokenDictionary& dict = index->dictionary();
  ASSERT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.TokenOf(0), "cold");
  EXPECT_EQ(dict.TokenOf(1), "warm");
  EXPECT_EQ(dict.TokenOf(2), "hot");
}

TEST(InvertedIndexDictionaryTest, OpenRebuildsFromExistingRuns) {
  TempDir dir;
  std::string path = dir.path() + "/inv";
  {
    auto index = *InvertedIndex::Open(path);
    ASSERT_TRUE(index->Insert({"persisted", "tokens"}, 7).ok());
    ASSERT_TRUE(index->Flush().ok());
  }
  auto reopened = *InvertedIndex::Open(path);
  EXPECT_TRUE(reopened->dictionary().Lookup("persisted").has_value());
  EXPECT_TRUE(reopened->dictionary().Lookup("tokens").has_value());
  EXPECT_FALSE(reopened->dictionary().Lookup("fresh").has_value());
  EXPECT_EQ(*reopened->PostingList("persisted"),
            (std::vector<int64_t>{7}));
}

TEST(InvertedIndexDictionaryTest, UnknownTokenProbesAreEmptyAndFree) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  ASSERT_TRUE(index->Insert({"a"}, 1).ok());
  InvertedSearchStats stats;
  auto result = index->SearchTOccurrence({"nope"}, 1,
                                         TOccurrenceAlgorithm::kScanCount,
                                         &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  EXPECT_EQ(stats.lists_probed, 1u);
  // Unknown tokens bypass both the cache and the LSM.
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

// ---------- posting-list cache ----------

TEST(PostingCacheTest, SecondProbeHitsCache) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  ASSERT_TRUE(index->BulkLoad({{"t", 1}, {"t", 2}}).ok());
  InvertedSearchStats stats;
  ASSERT_TRUE(index
                  ->SearchTOccurrence({"t"}, 1,
                                      TOccurrenceAlgorithm::kScanCount, &stats)
                  .ok());
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
  ASSERT_TRUE(index
                  ->SearchTOccurrence({"t"}, 1,
                                      TOccurrenceAlgorithm::kScanCount, &stats)
                  .ok());
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(index->cached_lists(), 1u);
}

TEST(PostingCacheTest, DisabledCacheDecodesEveryTime) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  ASSERT_TRUE(index->BulkLoad({{"t", 1}}).ok());
  InvertedSearchStats stats;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(index
                    ->SearchTOccurrence({"t"}, 1,
                                        TOccurrenceAlgorithm::kScanCount,
                                        &stats, /*use_cache=*/false)
                    .ok());
  }
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 3u);
  EXPECT_EQ(index->cached_lists(), 0u);
}

TEST(PostingCacheTest, InsertInvalidates) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  ASSERT_TRUE(index->Insert({"t"}, 1).ok());
  EXPECT_EQ(*index->PostingList("t"), (std::vector<int64_t>{1}));  // warm
  ASSERT_TRUE(index->Insert({"t"}, 2).ok());
  // A stale cache would still return {1}.
  EXPECT_EQ(*index->PostingList("t"), (std::vector<int64_t>{1, 2}));
}

TEST(PostingCacheTest, RemoveInvalidates) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  ASSERT_TRUE(index->Insert({"t"}, 1).ok());
  ASSERT_TRUE(index->Insert({"t"}, 2).ok());
  EXPECT_EQ(*index->PostingList("t"), (std::vector<int64_t>{1, 2}));  // warm
  ASSERT_TRUE(index->Remove({"t"}, 1).ok());
  EXPECT_EQ(*index->PostingList("t"), (std::vector<int64_t>{2}));
}

TEST(PostingCacheTest, BulkLoadInvalidates) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  ASSERT_TRUE(index->Insert({"t"}, 1).ok());
  EXPECT_EQ(*index->PostingList("t"), (std::vector<int64_t>{1}));  // warm
  ASSERT_TRUE(index->BulkLoad({{"t", 5}}).ok());
  EXPECT_EQ(*index->PostingList("t"), (std::vector<int64_t>{1, 5}));
}

TEST(PostingCacheTest, InvalidationAlsoReachesSearch) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  ASSERT_TRUE(index->Insert({"x", "y"}, 1).ok());
  auto before = index->SearchTOccurrence({"x", "y"}, 2);  // warms both lists
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, (std::vector<int64_t>{1}));
  ASSERT_TRUE(index->Insert({"x", "y"}, 2).ok());
  auto after = index->SearchTOccurrence({"x", "y"}, 2);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, (std::vector<int64_t>{1, 2}));
}

TEST(PostingCacheTest, BudgetBoundsCachedPostings) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  std::vector<std::pair<std::string, int64_t>> postings;
  for (int t = 0; t < 10; ++t) {
    for (int64_t pk = 0; pk < 100; ++pk) {
      postings.emplace_back("tok" + std::to_string(t), pk);
    }
  }
  ASSERT_TRUE(index->BulkLoad(std::move(postings)).ok());
  index->set_cache_budget_postings(250);  // room for two 100-posting lists
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(index->PostingList("tok" + std::to_string(t)).ok());
  }
  EXPECT_LE(index->cached_postings(), 250u);
  EXPECT_GT(index->cached_lists(), 0u);
  // Oversized single lists are never cached.
  index->set_cache_budget_postings(10);
  ASSERT_TRUE(index->PostingList("tok0").ok());
  EXPECT_LE(index->cached_postings(), 10u);
}

TEST(PostingCacheTest, CachedAndUncachedSearchesAgree) {
  TempDir dir;
  auto index = *InvertedIndex::Open(dir.path() + "/inv");
  std::vector<std::pair<std::string, int64_t>> postings;
  for (int64_t pk = 0; pk < 200; ++pk) {
    postings.emplace_back("a" + std::to_string(pk % 7), pk);
    postings.emplace_back("b" + std::to_string(pk % 3), pk);
  }
  ASSERT_TRUE(index->BulkLoad(std::move(postings)).ok());
  std::vector<std::string> query = {"a0", "a1", "b0", "b2", "missing"};
  for (auto algorithm : {TOccurrenceAlgorithm::kScanCount,
                         TOccurrenceAlgorithm::kHeapMerge}) {
    for (int t = 1; t <= 3; ++t) {
      auto cached =
          index->SearchTOccurrence(query, t, algorithm, nullptr, true);
      auto uncached =
          index->SearchTOccurrence(query, t, algorithm, nullptr, false);
      ASSERT_TRUE(cached.ok());
      ASSERT_TRUE(uncached.ok());
      EXPECT_EQ(*cached, *uncached) << "t=" << t;
    }
  }
}

}  // namespace
}  // namespace simdb::storage
