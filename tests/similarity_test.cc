#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "similarity/edit_distance.h"
#include "similarity/index_compat.h"
#include "similarity/jaccard.h"
#include "similarity/similarity_function.h"
#include "similarity/tokenizer.h"

namespace simdb::similarity {
namespace {

using adm::Value;

// ---------- tokenizers ----------

TEST(WordTokensTest, SplitsAndLowercases) {
  EXPECT_EQ(WordTokens("Great Product - Fantastic Gift"),
            (std::vector<std::string>{"great", "product", "fantastic", "gift"}));
}

TEST(WordTokensTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("--- !!! ...").empty());
}

TEST(WordTokensTest, KeepsDigits) {
  EXPECT_EQ(WordTokens("model X100-B"),
            (std::vector<std::string>{"model", "x100", "b"}));
}

TEST(GramTokensTest, Enumeration) {
  EXPECT_EQ(GramTokens("james", 2),
            (std::vector<std::string>{"ja", "am", "me", "es"}));
  EXPECT_EQ(GramTokens("marla", 2),
            (std::vector<std::string>{"ma", "ar", "rl", "la"}));
}

TEST(GramTokensTest, ShortStringsYieldNothingWithoutPadding) {
  EXPECT_TRUE(GramTokens("a", 2).empty());
  EXPECT_TRUE(GramTokens("", 3).empty());
}

TEST(GramTokensTest, PrePostPadding) {
  std::vector<std::string> grams = GramTokens("ab", 3, /*pre_post_pad=*/true);
  // "##ab$$" -> ##a, #ab, ab$, b$$
  ASSERT_EQ(grams.size(), 4u);
  EXPECT_EQ(grams.front(), "##a");
  EXPECT_EQ(grams.back(), "b$$");
}

TEST(GramCountTest, Formula) {
  EXPECT_EQ(GramCount(5, 2), 4);
  EXPECT_EQ(GramCount(2, 2), 1);
  EXPECT_EQ(GramCount(1, 2), 0);
  EXPECT_EQ(GramCount(0, 3), 0);
}

TEST(DedupOccurrencesTest, MarksRepeats) {
  EXPECT_EQ(DedupOccurrences({"a", "b", "a", "a"}),
            (std::vector<std::string>{"a", "b", "a#1", "a#2"}));
}

TEST(DedupOccurrencesTest, PreservesMultisetIntersection) {
  // |multiset intersection| equals |set intersection of deduped forms|.
  std::vector<std::string> a = {"x", "x", "y", "z"};
  std::vector<std::string> b = {"x", "x", "x", "z"};
  std::vector<std::string> da = DedupOccurrences(a), db = DedupOccurrences(b);
  std::set<std::string> sa(da.begin(), da.end()), sb(db.begin(), db.end());
  std::vector<std::string> inter;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(inter));
  EXPECT_EQ(inter.size(), 3u);  // min(2,3) of x + 1 of z
}

// ---------- edit distance ----------

TEST(EditDistanceTest, PaperExample) {
  EXPECT_EQ(EditDistance("james", "jamie"), 2);
}

TEST(EditDistanceTest, Basics) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
}

TEST(EditDistanceTest, OrderedListsPaperExample) {
  // ["Better","than","I","expected"] vs ["Better","than","expected"] -> 1.
  EXPECT_EQ(EditDistance({"Better", "than", "I", "expected"},
                         {"Better", "than", "expected"}),
            1);
}

TEST(EditDistanceCheckTest, WithinThresholdReturnsDistance) {
  EXPECT_EQ(EditDistanceCheck("james", "jamie", 2), 2);
  EXPECT_EQ(EditDistanceCheck("abc", "abc", 0), 0);
}

TEST(EditDistanceCheckTest, BeyondThresholdReturnsMinusOne) {
  EXPECT_EQ(EditDistanceCheck("james", "jamie", 1), -1);
  EXPECT_EQ(EditDistanceCheck("abcdef", "x", 2), -1);  // length filter
  EXPECT_EQ(EditDistanceCheck("a", "b", 0), -1);
}

class EditDistanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(EditDistanceProperty, BandedMatchesFullDp) {
  Random rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 200; ++iter) {
    auto make = [&rng] {
      std::string s;
      for (uint64_t i = 0, n = rng.Uniform(12); i < n; ++i) {
        s.push_back(static_cast<char>('a' + rng.Uniform(4)));
      }
      return s;
    };
    std::string a = make(), b = make();
    int full = EditDistance(a, b);
    for (int k = 0; k <= 5; ++k) {
      int checked = EditDistanceCheck(a, b, k);
      if (full <= k) {
        EXPECT_EQ(checked, full) << a << " vs " << b << " k=" << k;
      } else {
        EXPECT_EQ(checked, -1) << a << " vs " << b << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditDistanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(EditDistanceProperty, TriangleAndSymmetry) {
  Random rng(77);
  for (int iter = 0; iter < 100; ++iter) {
    auto make = [&rng] {
      std::string s;
      for (uint64_t i = 0, n = rng.Uniform(8); i < n; ++i) {
        s.push_back(static_cast<char>('a' + rng.Uniform(3)));
      }
      return s;
    };
    std::string a = make(), b = make(), c = make();
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
  }
}

TEST(EditDistanceTOccurrenceTest, PaperExample) {
  // q="marla", n=2, k=1: T = 4 - 2*1 = 2 (paper Section 2.2).
  EXPECT_EQ(EditDistanceTOccurrence(5, 2, 1), 2);
  // k=3 gives the corner case: T = 4 - 2*3 = -2.
  EXPECT_EQ(EditDistanceTOccurrence(5, 2, 3), -2);
}

// Grams shared by strings within edit distance k is at least T (the
// T-occurrence guarantee used for candidate generation).
TEST(EditDistanceTOccurrenceTest, LowerBoundHolds) {
  Random rng(31);
  for (int iter = 0; iter < 300; ++iter) {
    std::string a;
    for (uint64_t i = 0, n = 4 + rng.Uniform(8); i < n; ++i) {
      a.push_back(static_cast<char>('a' + rng.Uniform(5)));
    }
    // Apply <= k random single-char edits.
    int k = static_cast<int>(rng.Uniform(3));
    std::string b = a;
    for (int e = 0; e < k && !b.empty(); ++e) {
      size_t pos = rng.Uniform(b.size());
      switch (rng.Uniform(3)) {
        case 0:
          b[pos] = static_cast<char>('a' + rng.Uniform(5));
          break;
        case 1:
          b.erase(pos, 1);
          break;
        default:
          b.insert(pos, 1, static_cast<char>('a' + rng.Uniform(5)));
      }
    }
    ASSERT_LE(EditDistance(a, b), k);
    int n = 2;
    int t = EditDistanceTOccurrence(static_cast<int>(a.size()), n, k);
    if (t <= 0) continue;
    // Count multiset gram intersection via occurrence-deduped sets.
    std::vector<std::string> ga = DedupOccurrences(GramTokens(a, n));
    std::vector<std::string> gb = DedupOccurrences(GramTokens(b, n));
    std::set<std::string> sa(ga.begin(), ga.end()), sb(gb.begin(), gb.end());
    std::vector<std::string> inter;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(inter));
    EXPECT_GE(static_cast<int>(inter.size()), t) << a << " vs " << b;
  }
}

// ---------- Jaccard ----------

TEST(JaccardTest, PaperExample) {
  // {"Good","Product","Value"} vs {"Nice","Product"} -> 1/4.
  EXPECT_DOUBLE_EQ(Jaccard({"Good", "Product", "Value"}, {"Nice", "Product"}),
                   0.25);
}

TEST(JaccardTest, EdgeCases) {
  // 0/0 is defined as 0 so empty fields never match (see jaccard.cc).
  EXPECT_DOUBLE_EQ(Jaccard({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard({"a", "b"}, {"a", "b"}), 1.0);
}

TEST(JaccardTest, MultisetSemantics) {
  // {a,a,b} vs {a,b}: inter = 2 (one a + one b), union = 3 -> 2/3.
  EXPECT_DOUBLE_EQ(Jaccard({"a", "a", "b"}, {"a", "b"}), 2.0 / 3.0);
}

TEST(JaccardCheckTest, MatchesExactWhenAboveThreshold) {
  std::vector<std::string> a = {"a", "b", "c", "d"}, b = {"a", "b", "c", "x"};
  double exact = JaccardSorted(a, b);
  EXPECT_DOUBLE_EQ(JaccardCheckSorted(a, b, 0.5), exact);
  EXPECT_EQ(JaccardCheckSorted(a, b, 0.9), -1.0);
}

TEST(JaccardCheckTest, LengthFilterShortCircuits) {
  std::vector<std::string> small = {"a"};
  std::vector<std::string> big = {"b", "c", "d", "e", "f", "g", "h", "i"};
  EXPECT_EQ(JaccardCheckSorted(small, big, 0.5), -1.0);
}

class JaccardProperty : public ::testing::TestWithParam<double> {};

TEST_P(JaccardProperty, CheckAgreesWithExact) {
  double delta = GetParam();
  Random rng(17);
  for (int iter = 0; iter < 300; ++iter) {
    auto make = [&rng] {
      std::vector<std::string> v;
      for (uint64_t i = 0, n = rng.Uniform(10); i < n; ++i) {
        v.push_back(std::string(1, static_cast<char>('a' + rng.Uniform(6))));
      }
      std::sort(v.begin(), v.end());
      return v;
    };
    std::vector<std::string> a = make(), b = make();
    double exact = JaccardSorted(a, b);
    double checked = JaccardCheckSorted(a, b, delta);
    if (exact >= delta) {
      EXPECT_DOUBLE_EQ(checked, exact);
    } else {
      EXPECT_EQ(checked, -1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, JaccardProperty,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0));

TEST(PrefixLenJaccardTest, Formula) {
  // len=4, delta=0.5 -> keep ceil(2)=2, prefix = 4-2+1 = 3.
  EXPECT_EQ(PrefixLenJaccard(4, 0.5), 3);
  EXPECT_EQ(PrefixLenJaccard(10, 0.8), 3);
  EXPECT_EQ(PrefixLenJaccard(0, 0.5), 0);
  EXPECT_EQ(PrefixLenJaccard(5, 1.0), 1);
}

// Prefix-filter completeness: if Jaccard(a,b) >= delta then the
// prefix-len prefixes (under any shared total order) intersect.
TEST(PrefixLenJaccardTest, PrefixFilterComplete) {
  Random rng(41);
  for (int iter = 0; iter < 500; ++iter) {
    auto make = [&rng] {
      std::set<std::string> s;
      for (uint64_t i = 0, n = 1 + rng.Uniform(8); i < n; ++i) {
        s.insert(std::string(1, static_cast<char>('a' + rng.Uniform(8))));
      }
      return std::vector<std::string>(s.begin(), s.end());
    };
    std::vector<std::string> a = make(), b = make();
    double delta = 0.5;
    if (JaccardSorted(a, b) < delta) continue;
    // Shared order: lexicographic (both are sorted already).
    int pa = PrefixLenJaccard(static_cast<int>(a.size()), delta);
    int pb = PrefixLenJaccard(static_cast<int>(b.size()), delta);
    std::set<std::string> prefix_a(a.begin(), a.begin() + pa);
    bool overlap = false;
    for (int i = 0; i < pb; ++i) {
      if (prefix_a.count(b[static_cast<size_t>(i)]) > 0) overlap = true;
    }
    EXPECT_TRUE(overlap);
  }
}

TEST(JaccardTOccurrenceTest, Bounds) {
  EXPECT_EQ(JaccardTOccurrence(10, 0.5), 5);
  EXPECT_EQ(JaccardTOccurrence(10, 0.81), 9);
  EXPECT_EQ(JaccardTOccurrence(3, 0.2), 1);
  EXPECT_GE(JaccardTOccurrence(0, 0.2), 1);  // never a corner case
}

TEST(JaccardLengthFilterTest, Bounds) {
  EXPECT_EQ(JaccardMinLength(10, 0.5), 5);
  EXPECT_EQ(JaccardMaxLength(10, 0.5), 20);
}

// ---------- registry / compatibility ----------

TEST(RegistryTest, BuiltinsPresent) {
  auto& reg = SimilarityFunctionRegistry::Global();
  ASSERT_NE(reg.Find("edit-distance"), nullptr);
  ASSERT_NE(reg.Find("similarity-jaccard"), nullptr);
  EXPECT_EQ(reg.Find("no-such-fn"), nullptr);
}

TEST(RegistryTest, AliasesResolve) {
  auto& reg = SimilarityFunctionRegistry::Global();
  EXPECT_EQ(reg.FindByAlias("jaccard")->name, "similarity-jaccard");
  EXPECT_EQ(reg.FindByAlias("ed")->name, "edit-distance");
}

TEST(RegistryTest, EvalAndCheck) {
  auto& reg = SimilarityFunctionRegistry::Global();
  const SimilarityFunction* ed = reg.Find("edit-distance");
  Value d = *ed->eval(Value::String("james"), Value::String("jamie"));
  EXPECT_EQ(d.AsInt64(), 2);
  EXPECT_TRUE(*ed->check(Value::String("james"), Value::String("jamie"), 2));
  EXPECT_FALSE(*ed->check(Value::String("james"), Value::String("jamie"), 1));

  const SimilarityFunction* jac = reg.Find("similarity-jaccard");
  Value a = Value::MakeArray({Value::String("good"), Value::String("product")});
  Value b = Value::MakeArray({Value::String("product")});
  EXPECT_DOUBLE_EQ((*jac->eval(a, b)).AsDoubleExact(), 0.5);
  EXPECT_TRUE(*jac->check(a, b, 0.5));
  EXPECT_FALSE(*jac->check(a, b, 0.6));
}

TEST(RegistryTest, UserDefinedFunction) {
  auto& reg = SimilarityFunctionRegistry::Global();
  reg.Register({.name = "similarity-test-overlap",
                .sense = ThresholdSense::kSimilarityAtLeast,
                .eval =
                    [](const Value& a, const Value& b) -> Result<Value> {
                      SIMDB_ASSIGN_OR_RETURN(auto ta, ValueToTokens(a));
                      SIMDB_ASSIGN_OR_RETURN(auto tb, ValueToTokens(b));
                      std::set<std::string> sa(ta.begin(), ta.end());
                      int overlap = 0;
                      for (const auto& t : tb) overlap += sa.count(t) > 0;
                      return Value::Int64(overlap);
                    },
                .check = nullptr});
  const SimilarityFunction* udf = reg.Find("similarity-test-overlap");
  ASSERT_NE(udf, nullptr);
  Value a = Value::MakeArray({Value::String("x"), Value::String("y")});
  Value b = Value::MakeArray({Value::String("y")});
  EXPECT_EQ((*udf->eval(a, b)).AsInt64(), 1);
}

TEST(IndexCompatTest, PaperFigure13) {
  EXPECT_TRUE(IsIndexCompatible(IndexKind::kNGram, "edit-distance"));
  EXPECT_TRUE(IsIndexCompatible(IndexKind::kNGram, "contains"));
  EXPECT_FALSE(IsIndexCompatible(IndexKind::kNGram, "similarity-jaccard"));
  EXPECT_TRUE(IsIndexCompatible(IndexKind::kKeyword, "similarity-jaccard"));
  EXPECT_FALSE(IsIndexCompatible(IndexKind::kKeyword, "edit-distance"));
}

TEST(ValueToTokensTest, RejectsNonLists) {
  EXPECT_FALSE(ValueToTokens(Value::String("abc")).ok());
  EXPECT_FALSE(
      ValueToTokens(Value::MakeArray({Value::Int64(1)})).ok());
  Result<std::vector<std::string>> ok =
      ValueToTokens(Value::MakeArray({Value::String("a")}));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 1u);
}

}  // namespace
}  // namespace simdb::similarity
