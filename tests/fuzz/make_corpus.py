#!/usr/bin/env python3
"""Regenerates the wire_frame_fuzzer seed corpus (tests/fuzz/corpus/).

Frames follow src/adm/wire.h: magic u32 'SFRM' | version u8 | length u32 |
crc32 u32 | payload, all little-endian. zlib.crc32 is the same reflected
IEEE-802.3 CRC the engine implements, so the seeds are valid frames built
from the known-CRC vectors pinned by tests/value_test.cc, plus a handful of
near-miss frames (bad magic / version / crc / truncation) that start the
fuzzer on each rejection branch.
"""
import struct
import zlib
from pathlib import Path

MAGIC = 0x4D524653  # "SFRM"
VERSION = 1


def frame(payload: bytes, magic=MAGIC, version=VERSION, crc=None,
          length=None) -> bytes:
    if crc is None:
        crc = zlib.crc32(payload) & 0xFFFFFFFF
    if length is None:
        length = len(payload)
    return struct.pack("<IBII", magic, version, length, crc) + payload


def fragment_request(query_id=42, dst=1, nodes=2, ppn=2, op=1,
                     columns=(0,), ascending=()) -> bytes:
    """A kFragment request payload (src/adm/wire.h): FragmentHeader +
    FragmentClosure + one empty row group per partition."""
    groups = nodes * ppn
    payload = struct.pack("<QIIII", query_id, dst, nodes, ppn, groups)
    payload += struct.pack("<BI", op, len(columns))
    for c in columns:
        payload += struct.pack("<I", c)
    payload += struct.pack("<I", len(ascending))
    for a in ascending:
        payload += struct.pack("<B", a)
    payload += struct.pack("<I", 0) * groups  # empty row groups
    return payload


def fragment_error(code=5, message=b"corrupt slice") -> bytes:
    """A kFragmentError payload: status code byte + length-prefixed text
    (5 = kCorruption in common/status.h)."""
    return struct.pack("<BI", code, len(message)) + message


def main():
    corpus = Path(__file__).resolve().parent / "corpus"
    corpus.mkdir(exist_ok=True)
    known = {
        "empty": b"",                  # crc 0x00000000
        "digits": b"123456789",        # crc 0xcbf43926
        "hello": b"hello",             # crc 0x3610a686
    }
    seeds = {}
    for name, payload in known.items():
        seeds[f"valid_{name}"] = frame(payload)
    seeds["valid_two_frames"] = frame(b"hello") + frame(b"123456789")
    seeds["bad_magic"] = frame(b"hello", magic=0x4D524654)
    seeds["bad_version"] = frame(b"hello", version=2)
    seeds["bad_crc"] = frame(b"hello", crc=0xDEADBEEF)
    seeds["short_payload"] = frame(b"hello", length=64)
    seeds["truncated_header"] = frame(b"hello")[:7]
    # Fragment-family seeds (kFragment / kFragmentError / kCancelFragment
    # payload shapes from docs/DISTRIBUTED.md) so mutation starts on the
    # message layouts the socket workers actually parse.
    seeds["frag_request_hash"] = frame(fragment_request())
    seeds["frag_request_merge_gather"] = frame(
        fragment_request(op=4, columns=(1, 0), ascending=(1, 0)))
    seeds["frag_request_bad_op"] = frame(fragment_request(op=99))
    seeds["frag_request_truncated"] = frame(fragment_request()[:-6])
    seeds["frag_error"] = frame(fragment_error())
    seeds["frag_cancel"] = frame(struct.pack("<Q", 42))
    # A [u8 type][frame] channel message as the transport writes it; the
    # leading type byte must fail the bare-frame magic check cleanly.
    seeds["frag_typed_message"] = struct.pack("<B", 6) + frame(
        fragment_request())

    for name, data in sorted(seeds.items()):
        (corpus / name).write_bytes(data)
        print(f"{name}: {len(data)} bytes")


if __name__ == "__main__":
    main()
