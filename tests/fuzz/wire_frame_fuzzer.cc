// Fuzz harness for adm::ReadFrame, the trust boundary every byte crossing
// the shm/socket transports passes through. The harness asserts two
// properties on arbitrary input:
//
//   1. ReadFrame never crashes, overflows, or reads past the buffer
//      (sanitizers catch violations);
//   2. accept implies round-trip identity: any payload ReadFrame accepts,
//      re-framed with WriteFrame, is accepted again byte-identically.
//
// Built only under SIMDB_SANITIZE (tests/fuzz/CMakeLists.txt). Two drivers
// share this file:
//   * with clang's -fsanitize=fuzzer, libFuzzer provides main() and drives
//     LLVMFuzzerTestOneInput coverage-guided;
//   * otherwise a standalone main() replays the seed corpus (file
//     arguments or a corpus directory) and then runs a fixed-budget
//     mutation loop, so the ASan CI smoke works with any compiler.
// The seed corpus (tests/fuzz/corpus/) is generated from the known-CRC
// wire vectors by tests/fuzz/make_corpus.py.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "adm/wire.h"
#include "common/bytes.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // Consume frames until the first rejection, mirroring how the socket
  // worker drains a channel carrying several frames back to back.
  simdb::ByteReader reader(input);
  while (reader.remaining() > 0) {
    size_t before = reader.position();
    simdb::Result<std::string_view> frame = simdb::adm::ReadFrame(&reader);
    if (!frame.ok()) break;

    // Accept implies round-trip identity.
    std::string reframed;
    simdb::adm::WriteFrame(*frame, &reframed);
    simdb::ByteReader again(reframed);
    simdb::Result<std::string_view> second = simdb::adm::ReadFrame(&again);
    if (!second.ok() || *second != *frame) {
      std::fprintf(stderr,
                   "wire_frame_fuzzer: round-trip broke on an accepted "
                   "frame (%zu payload bytes)\n",
                   frame->size());
      __builtin_trap();
    }
    // A successful parse must make progress or the drain loop spins.
    if (reader.position() <= before) {
      std::fprintf(stderr, "wire_frame_fuzzer: ReadFrame succeeded without "
                           "consuming bytes\n");
      __builtin_trap();
    }
  }
  return 0;
}

#ifndef SIMDB_FUZZ_WITH_LIBFUZZER

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace {

void RunOne(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(data.data()),
                         data.size());
}

}  // namespace

// Standalone driver: replay corpus entries, then mutate them for a fixed
// budget (deterministic seed so CI runs are reproducible). `--seconds=N`
// switches the mutation loop from an iteration budget to a wall-clock one
// (the CI smoke runs 30 seconds).
int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  long budget_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seconds=", 10) == 0) {
      budget_seconds = std::strtol(argv[i] + 10, nullptr, 10);
      continue;
    }
    std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path().string());
      }
    } else {
      inputs.push_back(argv[i]);
    }
  }
  for (const std::string& path : inputs) RunOne(path);

  // Mutation smoke: corrupt random bytes / truncate / extend corpus seeds.
  std::mt19937 rng(0x51f2db01u);
  std::vector<std::string> seeds;
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    seeds.emplace_back((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  if (seeds.empty()) seeds.push_back(std::string());
  constexpr int kIterations = 200000;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(budget_seconds);
  int iterations = 0;
  for (int i = 0;
       budget_seconds > 0 ? std::chrono::steady_clock::now() < deadline
                          : i < kIterations;
       ++i, ++iterations) {
    std::string mutated = seeds[rng() % seeds.size()];
    switch (rng() % 4) {
      case 0:  // flip a byte
        if (!mutated.empty()) mutated[rng() % mutated.size()] ^= rng() & 0xff;
        break;
      case 1:  // truncate
        mutated.resize(mutated.empty() ? 0 : rng() % mutated.size());
        break;
      case 2:  // append garbage
        for (int n = rng() % 16; n > 0; --n) {
          mutated.push_back(static_cast<char>(rng() & 0xff));
        }
        break;
      case 3:  // splice two seeds
        mutated += seeds[rng() % seeds.size()];
        break;
    }
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const uint8_t*>(mutated.data()), mutated.size());
  }
  std::printf("wire_frame_fuzzer: %zu corpus files + %d mutations, clean\n",
              inputs.size(), iterations);
  return 0;
}

#endif  // SIMDB_FUZZ_WITH_LIBFUZZER
