// Pins the simulated-makespan formula of cluster/cost_model.h against
// DESIGN.md: per-operator compute is bounded by the slowest node (sum of its
// partitions' seconds), network time charges remote bytes through per-node
// NICs plus per-frame latency. Covers the degenerate shapes: no operators,
// single-node topologies, and exchange-only operators (compute == 0).
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cost_model.h"

namespace simdb::cluster {
namespace {

using hyracks::ClusterTopology;
using hyracks::ExecStats;
using hyracks::OpStats;

TEST(ComputeMakespanTest, ZeroOpsIsZero) {
  ExecStats stats;
  MakespanReport report = ComputeMakespan(stats, {4, 2});
  EXPECT_EQ(report.compute_seconds, 0.0);
  EXPECT_EQ(report.network_seconds, 0.0);
  EXPECT_EQ(report.total_seconds(), 0.0);
}

TEST(ComputeMakespanTest, SingleNodeSumsAllPartitions) {
  // On a 1-node topology every partition shares the one node, so the stage
  // time is the plain sum, not a max across nodes.
  ExecStats stats;
  OpStats op;
  op.name = "SCAN";
  op.partition_seconds = {0.5, 0.25, 0.125, 0.125};
  stats.ops.push_back(op);
  MakespanReport report = ComputeMakespan(stats, ClusterTopology{1, 4});
  EXPECT_DOUBLE_EQ(report.compute_seconds, 1.0);
  EXPECT_EQ(report.network_seconds, 0.0);
}

TEST(ComputeMakespanTest, SlowestNodeBoundsTheStage) {
  // 2 nodes x 2 partitions: node 0 holds partitions {0,1}, node 1 holds
  // {2,3}. Node sums are 0.7 and 0.3 -> the stage costs 0.7.
  ExecStats stats;
  OpStats op;
  op.partition_seconds = {0.4, 0.3, 0.2, 0.1};
  stats.ops.push_back(op);
  MakespanReport report = ComputeMakespan(stats, ClusterTopology{2, 2});
  EXPECT_DOUBLE_EQ(report.compute_seconds, 0.7);
}

TEST(ComputeMakespanTest, StagesAreSequential) {
  // The executor is stage-sequential: operator makespans add up.
  ExecStats stats;
  OpStats a, b;
  a.partition_seconds = {0.4, 0.1};  // 1 node -> 0.5
  b.partition_seconds = {0.2, 0.2};  // 1 node -> 0.4
  stats.ops.push_back(a);
  stats.ops.push_back(b);
  MakespanReport report = ComputeMakespan(stats, ClusterTopology{1, 2});
  EXPECT_DOUBLE_EQ(report.compute_seconds, 0.9);
}

TEST(ComputeMakespanTest, ExchangeOnlyOpChargesOnlyNetwork) {
  // An exchange with no measured compute (compute_seconds == 0): the model
  // must charge exactly per_node_bytes / bandwidth + frames * latency, with
  // both the bytes and the frames spread across the nodes' NICs.
  ExecStats stats;
  OpStats exchange;
  exchange.name = "HASH-EXCHANGE";
  exchange.remote_bytes = 4 * 1024 * 1024;  // 4 MiB
  stats.ops.push_back(exchange);

  NetworkModel net;
  net.bandwidth_bytes_per_sec = 1024 * 1024;  // 1 MiB/s -> easy arithmetic
  net.frame_bytes = 32 * 1024;
  net.frame_latency_sec = 1e-3;

  const int nodes = 2;
  MakespanReport report =
      ComputeMakespan(stats, ClusterTopology{nodes, 2}, net);
  EXPECT_EQ(report.compute_seconds, 0.0);
  double per_node_bytes = 4.0 * 1024 * 1024 / nodes;
  double frames = std::ceil(4.0 * 1024 * 1024 / (32 * 1024)) / nodes;
  EXPECT_DOUBLE_EQ(report.network_seconds,
                   per_node_bytes / (1024 * 1024) + frames * 1e-3);
}

TEST(ComputeMakespanTest, LocalBytesAreFree) {
  // Only remote_bytes cost network time; same-node traffic is free in the
  // model (the paper's testbed bottleneck is the NIC).
  ExecStats stats;
  OpStats exchange;
  exchange.local_bytes = 1 << 30;
  exchange.remote_bytes = 0;
  stats.ops.push_back(exchange);
  MakespanReport report = ComputeMakespan(stats, ClusterTopology{2, 2});
  EXPECT_EQ(report.network_seconds, 0.0);
}

TEST(CriticalPathTest, LegacyStatsKeepStageSum) {
  // Stats without task-DAG shape (hand-built, or from old recordings) must
  // keep the stage-sum total and the legacy format string.
  ExecStats stats;
  OpStats op;
  op.partition_seconds = {0.4, 0.1};
  stats.ops.push_back(op);
  MakespanReport report = ComputeMakespan(stats, ClusterTopology{1, 2});
  EXPECT_FALSE(report.has_critical_path);
  EXPECT_DOUBLE_EQ(report.total_seconds(), 0.5);
}

TEST(CriticalPathTest, ChainOfLocalOpsFollowsSlowestPartitionChain) {
  // Two chained partition-local ops: the critical path is the slowest
  // per-partition chain (0.4 + 0.2 = 0.6), not the stage-sum of per-stage
  // maxima — partitions overlap across stages in the task-graph runtime.
  ExecStats stats;
  stats.has_task_dag = true;
  OpStats a, b;
  a.name = "SCAN";
  a.node_id = 0;
  a.partition_seconds = {0.4, 0.1};
  b.name = "SELECT";
  b.node_id = 1;
  b.input_ops = {0};
  b.partition_seconds = {0.2, 0.2};
  stats.ops.push_back(a);
  stats.ops.push_back(b);
  MakespanReport report = ComputeMakespan(stats, ClusterTopology{1, 2});
  ASSERT_TRUE(report.has_critical_path);
  EXPECT_DOUBLE_EQ(report.critical_path_seconds, 0.6);
  EXPECT_DOUBLE_EQ(report.total_seconds(), 0.6);
  // Stage-sum charges 0.5 + 0.4 = 0.9 for the same stats.
  EXPECT_DOUBLE_EQ(report.stage_sum_seconds(), 0.9);
}

TEST(CriticalPathTest, BarrierWaitsForAllPartitionsOfAllInputs) {
  // A barrier op cannot start any partition until every input partition is
  // done: ready = max(0.4, 0.1) = 0.4, then its own partition times.
  ExecStats stats;
  stats.has_task_dag = true;
  OpStats a, b;
  a.node_id = 0;
  a.partition_seconds = {0.4, 0.1};
  b.node_id = 1;
  b.input_ops = {0};
  b.barrier = true;
  b.partition_seconds = {0.05, 0.3};
  stats.ops.push_back(a);
  stats.ops.push_back(b);
  MakespanReport report = ComputeMakespan(stats, ClusterTopology{1, 2});
  ASSERT_TRUE(report.has_critical_path);
  EXPECT_DOUBLE_EQ(report.critical_path_seconds, 0.7);
}

TEST(CriticalPathTest, BarrierChargesNetworkBeforeItsOutputs) {
  // An exchange's modeled network time delays the start of its outputs on
  // the critical path (and is charged once, not per partition).
  ExecStats stats;
  stats.has_task_dag = true;
  OpStats a, x;
  a.node_id = 0;
  a.partition_seconds = {0.1, 0.1};
  x.name = "HASH-EXCHANGE";
  x.node_id = 1;
  x.input_ops = {0};
  x.barrier = true;
  x.remote_bytes = 2 * 1024 * 1024;
  stats.ops.push_back(a);
  stats.ops.push_back(x);

  NetworkModel net;
  net.bandwidth_bytes_per_sec = 1024 * 1024;
  net.frame_bytes = 32 * 1024;
  net.frame_latency_sec = 0;

  const int nodes = 2;
  MakespanReport report =
      ComputeMakespan(stats, ClusterTopology{nodes, 1}, net);
  ASSERT_TRUE(report.has_critical_path);
  // 0.1 compute, then 2 MiB spread over 2 NICs at 1 MiB/s = 1.0s.
  EXPECT_DOUBLE_EQ(report.critical_path_seconds, 1.1);
}

TEST(FormatMakespanTest, RendersCriticalPathWhenPresent) {
  MakespanReport report;
  report.compute_seconds = 1.25;
  report.network_seconds = 0.75;
  report.critical_path_seconds = 1.5;
  report.has_critical_path = true;
  std::string s = FormatMakespan(report);
  EXPECT_NE(s.find("1.500s critical path"), std::string::npos);
  EXPECT_NE(s.find("stage-sum 2.000s"), std::string::npos);
}

TEST(FormatMakespanTest, RendersAllComponents) {
  MakespanReport report;
  report.compute_seconds = 1.25;
  report.network_seconds = 0.75;
  std::string s = FormatMakespan(report);
  EXPECT_NE(s.find("2.000s"), std::string::npos);
  EXPECT_NE(s.find("compute 1.250s"), std::string::npos);
  EXPECT_NE(s.find("network 0.750s"), std::string::npos);
}

}  // namespace
}  // namespace simdb::cluster
