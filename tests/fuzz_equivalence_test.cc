// Differential plan-equivalence fuzzing: every seed expands into a random
// dataset plus random similarity queries (selections, joins, multi-way
// joins; thresholds include the T <= 0 corner cases), executed under the
// full plan-variant x topology x T-occurrence matrix. All combinations must
// return identical order-normalized result sets.
//
// Modes:
//   (default)      the 50 fixed tier-1 seeds, one gtest case each — ctest
//                  registers them individually as fuzz_equivalence_seed_N
//   --seeds N      additionally fuzz N sequential seeds beyond the fixed set
//   --replay S     run exactly seed S (reproduces a printed failure)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/file_util.h"
#include "testing/differential.h"
#include "testing/fuzz.h"

namespace simdb::testing {
namespace {

constexpr uint64_t kFixedSeedCount = 50;

std::vector<uint64_t> g_extra_seeds;  // filled by main() from --seeds/--replay

std::string ScratchDir(uint64_t seed) {
  return (std::filesystem::temp_directory_path() /
          ("simdb_fuzz_" + std::to_string(::getpid()) + "_" +
           std::to_string(seed)))
      .string();
}

void RunSeed(uint64_t seed) {
  FuzzCase c = MakeFuzzCase(seed);
  DifferentialOptions options;
  options.scratch_dir = ScratchDir(seed);
  DifferentialReport report = RunDifferential(c, options);
  storage::RemoveAllBestEffort(options.scratch_dir);
  EXPECT_TRUE(report.ok) << report.failure;
  if (report.ok) {
    // >= 3 plan variants x >= 2 topologies per query, per the harness
    // contract; guard against a silently shrunken matrix.
    EXPECT_GE(report.comparisons,
              static_cast<int>(c.queries.size()) * 3 * 2)
        << DescribeFuzzCase(c);
  }
}

/// Batch execution must be invisible to results: the same seed's queries run
/// under the batch-focused variant matrix (indexed / scan / threestage plan
/// shapes, each with batch execution on and off) and every combination must
/// return bit-identical order-normalized rows.
void RunSeedBatch(uint64_t seed) {
  FuzzCase c = MakeFuzzCase(seed);
  DifferentialOptions options;
  options.scratch_dir = ScratchDir(seed) + "_batch";
  options.variants = BatchVariantMatrix();
  options.topologies = {{1, 1}, {2, 2}};
  DifferentialReport report = RunDifferential(c, options);
  storage::RemoveAllBestEffort(options.scratch_dir);
  EXPECT_TRUE(report.ok) << report.failure;
  if (report.ok) {
    // 3 plan shapes x {batch, tuple} x 2 topologies per query.
    EXPECT_GE(report.comparisons,
              static_cast<int>(c.queries.size()) * 6 * 2)
        << DescribeFuzzCase(c);
  }
}

/// The exchange transport must be invisible to results: the same seed's
/// queries run under every transport backend (modeled / shared-memory /
/// socket, plus shared-memory on the stage-sequential executor) and every
/// combination must return bit-identical order-normalized rows — the wire
/// round-trip is an identity on values. Topologies include 1x1 (where the
/// shm backend still ships everything) and 4x2 (where the socket backend
/// crosses real process boundaries).
void RunSeedTransport(uint64_t seed) {
  FuzzCase c = MakeFuzzCase(seed);
  DifferentialOptions options;
  options.scratch_dir = ScratchDir(seed) + "_transport";
  options.variants = TransportVariantMatrix();
  options.topologies = {{1, 1}, {4, 2}};
  DifferentialReport report = RunDifferential(c, options);
  storage::RemoveAllBestEffort(options.scratch_dir);
  EXPECT_TRUE(report.ok) << report.failure;
  if (report.ok) {
    // 4 transport variants x 2 topologies per query.
    EXPECT_GE(report.comparisons,
              static_cast<int>(c.queries.size()) * 4 * 2)
        << DescribeFuzzCase(c);
  }
}

/// Concurrent serving must be invisible to results: the same seed's queries
/// are executed once sequentially and then pushed through a 4-in-flight
/// serving engine, and every concurrent execution must be bit-identical —
/// including failing queries, which must fail with the sequential error.
void RunSeedConcurrent(uint64_t seed) {
  FuzzCase c = MakeFuzzCase(seed);
  ConcurrentDifferentialOptions options;
  options.scratch_dir = ScratchDir(seed) + "_concurrent";
  DifferentialReport report = RunConcurrentDifferential(c, options);
  EXPECT_TRUE(report.ok) << report.failure;
  if (report.ok) {
    EXPECT_EQ(report.comparisons,
              static_cast<int>(c.queries.size()) * options.repeats)
        << DescribeFuzzCase(c);
  }
}

class FuzzEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalence, AllVariantsAgree) { RunSeed(GetParam()); }

class BatchEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchEquivalence, BatchMatchesTuple) { RunSeedBatch(GetParam()); }

class TransportEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransportEquivalence, BackendsAgree) { RunSeedTransport(GetParam()); }

class ConcurrentEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrentEquivalence, MatchesSequential) {
  RunSeedConcurrent(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    FixedSeeds, FuzzEquivalence,
    ::testing::Range<uint64_t>(1, kFixedSeedCount + 1),
    [](const ::testing::TestParamInfo<uint64_t>& info) {
      return "seed" + std::to_string(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    FixedSeeds, BatchEquivalence,
    ::testing::Range<uint64_t>(1, kFixedSeedCount + 1),
    [](const ::testing::TestParamInfo<uint64_t>& info) {
      return "seed" + std::to_string(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    FixedSeeds, TransportEquivalence,
    ::testing::Range<uint64_t>(1, kFixedSeedCount + 1),
    [](const ::testing::TestParamInfo<uint64_t>& info) {
      return "seed" + std::to_string(info.param);
    });

INSTANTIATE_TEST_SUITE_P(
    FixedSeeds, ConcurrentEquivalence,
    ::testing::Range<uint64_t>(1, kFixedSeedCount + 1),
    [](const ::testing::TestParamInfo<uint64_t>& info) {
      return "seed" + std::to_string(info.param);
    });

TEST(FuzzEquivalenceExtra, RequestedSeeds) {
  if (g_extra_seeds.empty()) {
    GTEST_SKIP() << "no --seeds/--replay requested";
  }
  for (uint64_t seed : g_extra_seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunSeed(seed);
    RunSeedBatch(seed);
    RunSeedTransport(seed);
    RunSeedConcurrent(seed);
  }
}

}  // namespace
}  // namespace simdb::testing

namespace {

// strtoull-with-teeth: rejects empty, non-digit, and trailing-garbage input
// so `--seeds abc` fails loudly instead of silently fuzzing zero seeds.
bool ParseU64(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0';
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  bool replay_only = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    uint64_t n = 0;
    if (arg == "--seeds" && i + 1 < argc && ParseU64(argv[i + 1], &n)) {
      ++i;
      for (uint64_t s = 0; s < n; ++s) {
        simdb::testing::g_extra_seeds.push_back(
            simdb::testing::kFixedSeedCount + 1 + s);
      }
    } else if (arg == "--replay" && i + 1 < argc &&
               ParseU64(argv[i + 1], &n)) {
      ++i;
      simdb::testing::g_extra_seeds.push_back(n);
      replay_only = true;
    } else {
      std::fprintf(stderr,
                   "bad argument: %s (usage: --seeds N | --replay S)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (replay_only) {
    ::testing::GTEST_FLAG(filter) = "FuzzEquivalenceExtra.RequestedSeeds";
  }
  return RUN_ALL_TESTS();
}
