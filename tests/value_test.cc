#include <gtest/gtest.h>

#include "adm/value.h"
#include "adm/wire.h"
#include "common/random.h"

namespace simdb::adm {
namespace {

TEST(ValueTest, DefaultIsMissing) {
  Value v;
  EXPECT_TRUE(v.is_missing());
  EXPECT_EQ(v.type(), ValueType::kMissing);
}

TEST(ValueTest, Scalars) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Boolean(true).AsBoolean());
  EXPECT_EQ(Value::Int64(-5).AsInt64(), -5);
  EXPECT_EQ(Value::Double(2.5).AsDoubleExact(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, NumericCoercionInAsNumber) {
  EXPECT_EQ(Value::Int64(3).AsNumber(), 3.0);
  EXPECT_EQ(Value::Double(3.25).AsNumber(), 3.25);
}

TEST(ValueTest, CrossTypeOrder) {
  // MISSING < NULL < bool < numbers < strings < arrays < multisets < objects.
  std::vector<Value> ordered = {
      Value::Missing(),
      Value::Null(),
      Value::Boolean(false),
      Value::Int64(1),
      Value::String("a"),
      Value::MakeArray({Value::Int64(1)}),
      Value::MakeMultiset({Value::Int64(1)}),
      Value::MakeObject({{"a", Value::Int64(1)}}),
  };
  for (size_t i = 0; i + 1 < ordered.size(); ++i) {
    EXPECT_LT(Value::Compare(ordered[i], ordered[i + 1]), 0)
        << "at index " << i;
  }
}

TEST(ValueTest, IntAndDoubleCompareNumerically) {
  EXPECT_EQ(Value::Compare(Value::Int64(2), Value::Double(2.0)), 0);
  EXPECT_LT(Value::Compare(Value::Int64(2), Value::Double(2.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(3.1), Value::Int64(3)), 0);
}

TEST(ValueTest, EqualsAndHashAgreeOnMixedNumerics) {
  Value a = Value::Int64(7), b = Value::Double(7.0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, ArrayCompareLexicographic) {
  Value a = Value::MakeArray({Value::Int64(1), Value::Int64(2)});
  Value b = Value::MakeArray({Value::Int64(1), Value::Int64(3)});
  Value c = Value::MakeArray({Value::Int64(1)});
  EXPECT_LT(Value::Compare(a, b), 0);
  EXPECT_LT(Value::Compare(c, a), 0);
  EXPECT_EQ(Value::Compare(a, a), 0);
}

TEST(ValueTest, ObjectFieldsSortedAndDeduped) {
  Value v = Value::MakeObject(
      {{"b", Value::Int64(2)}, {"a", Value::Int64(1)}, {"b", Value::Int64(3)}});
  const Value::Object& fields = v.AsObject();
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].first, "a");
  EXPECT_EQ(fields[1].first, "b");
  EXPECT_EQ(fields[1].second.AsInt64(), 3);  // last occurrence wins
}

TEST(ValueTest, GetFieldReturnsMissingWhenAbsent) {
  Value v = Value::MakeObject({{"x", Value::Int64(1)}});
  EXPECT_EQ(v.GetField("x").AsInt64(), 1);
  EXPECT_TRUE(v.GetField("y").is_missing());
  EXPECT_TRUE(Value::Int64(5).GetField("x").is_missing());
}

TEST(ValueTest, ObjectOrderInsensitiveEquality) {
  Value a = Value::MakeObject({{"x", Value::Int64(1)}, {"y", Value::Int64(2)}});
  Value b = Value::MakeObject({{"y", Value::Int64(2)}, {"x", Value::Int64(1)}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE((*Value::FromJson("null")).is_null());
  EXPECT_TRUE((*Value::FromJson("true")).AsBoolean());
  EXPECT_FALSE((*Value::FromJson("false")).AsBoolean());
  EXPECT_EQ((*Value::FromJson("42")).AsInt64(), 42);
  EXPECT_EQ((*Value::FromJson("-7")).AsInt64(), -7);
  EXPECT_EQ((*Value::FromJson("2.5")).AsDoubleExact(), 2.5);
  EXPECT_EQ((*Value::FromJson("\"abc\"")).AsString(), "abc");
}

TEST(JsonTest, IntegerStaysInt64) {
  Value v = *Value::FromJson("123");
  EXPECT_TRUE(v.is_int64());
  Value d = *Value::FromJson("123.0");
  EXPECT_TRUE(d.is_double());
  Value e = *Value::FromJson("1e3");
  EXPECT_TRUE(e.is_double());
}

TEST(JsonTest, ParseNested) {
  Result<Value> r = Value::FromJson(
      R"({"id": 1, "tags": ["a", "b"], "inner": {"x": 2.5}})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Value& v = *r;
  EXPECT_EQ(v.GetField("id").AsInt64(), 1);
  EXPECT_EQ(v.GetField("tags").AsList().size(), 2u);
  EXPECT_EQ(v.GetField("inner").GetField("x").AsDoubleExact(), 2.5);
}

TEST(JsonTest, MultisetSyntax) {
  Result<Value> r = Value::FromJson(R"({{1, 2, 2}})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->is_multiset());
  EXPECT_EQ(r->AsList().size(), 3u);
}

TEST(JsonTest, StringEscapes) {
  Value v = *Value::FromJson(R"("a\"b\\c\ndA")");
  EXPECT_EQ(v.AsString(), "a\"b\\c\ndA");
}

TEST(JsonTest, Errors) {
  EXPECT_FALSE(Value::FromJson("").ok());
  EXPECT_FALSE(Value::FromJson("{").ok());
  EXPECT_FALSE(Value::FromJson("[1,").ok());
  EXPECT_FALSE(Value::FromJson("12abc").ok());
  EXPECT_FALSE(Value::FromJson("\"unterminated").ok());
  EXPECT_FALSE(Value::FromJson("{\"a\":1} trailing").ok());
}

TEST(JsonTest, RoundTrip) {
  const char* docs[] = {
      "null",
      "true",
      "-17",
      "\"hello world\"",
      R"(["a",1,2.5,null,{"k":false}])",
      R"({"a":1,"b":[1,2,3],"c":{"d":"e"}})",
      R"({{"x","x","y"}})",
  };
  for (const char* doc : docs) {
    Value v = *Value::FromJson(doc);
    Value v2 = *Value::FromJson(v.ToJson());
    EXPECT_EQ(v, v2) << doc;
  }
}

Value RandomValue(Random& rng, int depth) {
  switch (rng.Uniform(depth > 2 ? 5 : 8)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Boolean(rng.OneIn(2));
    case 2:
      return Value::Int64(rng.UniformRange(-1000, 1000));
    case 3:
      return Value::Double(static_cast<double>(rng.UniformRange(-99, 99)) / 4);
    case 4: {
      std::string s;
      for (uint64_t i = 0, n = rng.Uniform(10); i < n; ++i) {
        s.push_back(static_cast<char>('a' + rng.Uniform(26)));
      }
      return Value::String(s);
    }
    case 5:
    case 6: {
      Value::Array items;
      for (uint64_t i = 0, n = rng.Uniform(4); i < n; ++i) {
        items.push_back(RandomValue(rng, depth + 1));
      }
      return rng.OneIn(3) ? Value::MakeMultiset(std::move(items))
                          : Value::MakeArray(std::move(items));
    }
    default: {
      Value::Object fields;
      for (uint64_t i = 0, n = rng.Uniform(4); i < n; ++i) {
        fields.emplace_back("f" + std::to_string(i), RandomValue(rng, depth + 1));
      }
      return Value::MakeObject(std::move(fields));
    }
  }
}

TEST(SerdeTest, RandomRoundTrip) {
  Random rng(99);
  for (int i = 0; i < 500; ++i) {
    Value v = RandomValue(rng, 0);
    std::string buf;
    ByteWriter w(&buf);
    v.Serialize(&w);
    ByteReader r(buf);
    Result<Value> back = Value::Deserialize(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(v, *back);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(SerdeTest, JsonRandomRoundTrip) {
  Random rng(123);
  for (int i = 0; i < 200; ++i) {
    Value v = RandomValue(rng, 0);
    Result<Value> back = Value::FromJson(v.ToJson());
    ASSERT_TRUE(back.ok()) << v.ToJson() << ": " << back.status().ToString();
    EXPECT_EQ(v, *back) << v.ToJson();
  }
}

TEST(SerdeTest, TruncatedBufferFails) {
  Value v = Value::MakeObject({{"a", Value::String("hello")}});
  std::string buf;
  ByteWriter w(&buf);
  v.Serialize(&w);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    ByteReader r(std::string_view(buf).substr(0, cut));
    EXPECT_FALSE(Value::Deserialize(&r).ok()) << "cut=" << cut;
  }
}

// --- Wire framing (magic / version / length / CRC-32). The transport layer
// wraps every shipped exchange destination in one of these frames; a frame
// that survives WriteFrame -> ReadFrame unchanged plus exhaustive rejection
// of damaged frames is what makes the round trip an identity on values.

TEST(WireTest, Crc32KnownVectors) {
  // IEEE 802.3 reference values ("check" input from the CRC catalogue).
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32("hello"), 0x3610a686u);
}

TEST(WireTest, FrameRoundTripsRandomValues) {
  Random rng(2024);
  for (int i = 0; i < 200; ++i) {
    Value v = RandomValue(rng, 0);
    std::string payload;
    ByteWriter w(&payload);
    v.Serialize(&w);
    std::string frame;
    WriteFrame(payload, &frame);
    ASSERT_EQ(frame.size(), kWireHeaderBytes + payload.size());
    ByteReader r(frame);
    Result<std::string_view> got = ReadFrame(&r);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, payload);
    EXPECT_EQ(r.remaining(), 0u);
    ByteReader pr(*got);
    Result<Value> back = Value::Deserialize(&pr);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(v, *back);
  }
}

TEST(WireTest, EveryTruncationFails) {
  std::string frame;
  WriteFrame("some payload bytes", &frame);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    ByteReader r(std::string_view(frame).substr(0, cut));
    EXPECT_FALSE(ReadFrame(&r).ok()) << "cut=" << cut;
  }
}

TEST(WireTest, EverySingleByteCorruptionFails) {
  // Flipping any byte of the frame must be detected: header fields are
  // validated individually and the payload is covered by the checksum.
  std::string frame;
  WriteFrame("the quick brown fox", &frame);
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    ByteReader r(bad);
    Result<std::string_view> got = ReadFrame(&r);
    // A corrupted length byte may also leave trailing bytes behind; either
    // way the frame must not decode to the original payload silently.
    if (got.ok()) {
      EXPECT_NE(*got, std::string_view("the quick brown fox"))
          << "byte " << i;
      ADD_FAILURE() << "corrupted frame accepted at byte " << i;
    }
  }
}

TEST(WireTest, UnknownVersionRejected) {
  std::string frame;
  WriteFrame("payload", &frame);
  frame[4] = static_cast<char>(kWireVersion + 1);  // version byte
  ByteReader r(frame);
  Result<std::string_view> got = ReadFrame(&r);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("version"), std::string::npos)
      << got.status().ToString();
}

TEST(WireTest, BadMagicRejected) {
  std::string frame;
  WriteFrame("payload", &frame);
  frame[0] = 'X';
  ByteReader r(frame);
  Result<std::string_view> got = ReadFrame(&r);
  ASSERT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("magic"), std::string::npos)
      << got.status().ToString();
}

TEST(WireTest, FramedPayloadWithUnknownValueTagRejected) {
  // A valid frame whose payload is not a valid serialized value: the frame
  // layer accepts it (checksum matches), the value layer must reject it —
  // corruption cannot hide between the layers.
  std::string payload = "\xff\xff\xff\xff";
  std::string frame;
  WriteFrame(payload, &frame);
  ByteReader r(frame);
  Result<std::string_view> got = ReadFrame(&r);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ByteReader pr(*got);
  EXPECT_FALSE(Value::Deserialize(&pr).ok());
}

TEST(WireTest, BackToBackFramesReadSequentially) {
  std::string buf;
  WriteFrame("first", &buf);
  WriteFrame("second", &buf);
  ByteReader r(buf);
  Result<std::string_view> a = ReadFrame(&r);
  Result<std::string_view> b = ReadFrame(&r);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, "first");
  EXPECT_EQ(*b, "second");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(MemoryUsageTest, GrowsWithContent) {
  Value small = Value::Int64(1);
  Value big = Value::String(std::string(1000, 'x'));
  EXPECT_GT(big.MemoryUsage(), small.MemoryUsage() + 900);
}

}  // namespace
}  // namespace simdb::adm
