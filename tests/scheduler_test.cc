// Cross-checks the task-graph scheduler against the stage-sequential
// executor: identical outputs (byte-identical serialization, not just
// multisets), identical OpStats traffic counters, and byte-identical error
// strings for injected per-partition failures — under pool sizes 1, 2 and 8
// and with no pool at all. Diamond and REPLICATE (shared-node) job shapes,
// exchanges (hash, broadcast, gather, merge-gather) and a barrier operator
// (RANK-ASSIGN) are all exercised.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "hyracks/exec.h"
#include "hyracks/expr.h"
#include "hyracks/ops_basic.h"
#include "hyracks/ops_exchange.h"
#include "hyracks/ops_group.h"
#include "hyracks/ops_scan.h"

namespace simdb::hyracks {
namespace {

using adm::Value;

/// Deterministic source: `per_partition` ints per partition, valued so every
/// partition's rows are distinct.
class IntSourceOp : public PartitionOperator {
 public:
  explicit IntSourceOp(int per_partition) : per_partition_(per_partition) {}
  std::string name() const override { return "INT-SOURCE"; }
  int num_inputs() const override { return 0; }
  Result<Rows> ExecutePartition(ExecContext&, int p,
                                const std::vector<const Rows*>&) override {
    Rows rows;
    rows.reserve(static_cast<size_t>(per_partition_));
    for (int i = 0; i < per_partition_; ++i) {
      rows.push_back({Value::Int64(p * 1000 + i)});
    }
    return rows;
  }

 private:
  int per_partition_;
};

/// Passes rows through, failing on the listed partitions.
class FailOp : public PartitionOperator {
 public:
  explicit FailOp(std::set<int> bad) : bad_(std::move(bad)) {}
  std::string name() const override { return "FAIL"; }
  Result<Rows> ExecutePartition(ExecContext&, int p,
                                const std::vector<const Rows*>& inputs)
      override {
    if (bad_.count(p) > 0) {
      return Status::Internal("boom " + std::to_string(p));
    }
    return *inputs[0];
  }

 private:
  std::set<int> bad_;
};

/// Exact serialization: partition order and row order must match, not just
/// the multiset — both executors are deterministic.
std::string Serialize(const PartitionedRows& rows) {
  std::string out;
  for (size_t p = 0; p < rows.size(); ++p) {
    out += "p" + std::to_string(p) + ":";
    for (const Tuple& t : rows[p]) {
      out += "[";
      for (const Value& v : t) out += v.ToJson() + ",";
      out += "]";
    }
    out += "\n";
  }
  return out;
}

/// Everything in OpStats that must be identical across executors and pool
/// sizes (timings excluded).
std::vector<std::string> SummarizeOps(const ExecStats& stats) {
  std::vector<std::string> out;
  for (const OpStats& op : stats.ops) {
    std::string s = std::to_string(op.node_id) + " " + op.name + " in=[";
    for (int in : op.input_ops) s += std::to_string(in) + ",";
    s += "] barrier=" + std::to_string(op.barrier) +
         " stage=" + std::to_string(op.stage) +
         " rows_in=" + std::to_string(op.rows_in) +
         " rows=" + std::to_string(op.rows_out) +
         " local=" + std::to_string(op.local_bytes) +
         " remote=" + std::to_string(op.remote_bytes) +
         " transfers=" + std::to_string(op.remote_transfers) + " parts=[";
    for (uint64_t r : op.partition_rows) s += std::to_string(r) + ",";
    s += "]";
    out.push_back(std::move(s));
  }
  return out;
}

struct RunOutcome {
  Status status = Status::OK();
  std::string rows;
  std::vector<std::string> ops;
};

RunOutcome RunJob(const Job& job, ExecutorKind kind, size_t pool_size) {
  std::unique_ptr<ThreadPool> pool;
  if (pool_size > 0) pool = std::make_unique<ThreadPool>(pool_size);
  ExecStats stats;
  ExecContext ctx;
  ctx.pool = pool.get();
  ctx.topology = {2, 2};  // 2 nodes x 2 partitions
  ctx.stats = &stats;
  ctx.executor = kind;
  Result<PartitionedRows> out = Executor::Run(job, ctx);
  RunOutcome o;
  EXPECT_TRUE(stats.has_task_dag);
  if (out.ok()) {
    o.rows = Serialize(*out);
    o.ops = SummarizeOps(stats);
  } else {
    o.status = out.status();
  }
  return o;
}

constexpr ExecutorKind kKinds[] = {ExecutorKind::kScheduler,
                                   ExecutorKind::kStageSequential};
constexpr size_t kPoolSizes[] = {0, 1, 2, 8};  // 0 = no pool (inline)

/// Diamond: one source feeding two branches that reunite, then a hash
/// repartition, group, per-partition sort and a merge gather.
Job MakeDiamondJob() {
  Job job;
  int src =
      job.Add(std::make_unique<IntSourceOp>(50), {}, RowSchema({"v"}));
  int hi = job.Add(std::make_unique<SelectOp>(
                       *Call("gt", {Col(0, "v"), Lit(Value::Int64(1500))})),
                   {src}, RowSchema({"v"}));
  int doubled = job.Add(
      std::make_unique<AssignOp>(
          std::vector<ExprPtr>{*Call("mul", {Col(0, "v"),
                                             Lit(Value::Int64(2))})},
          std::vector<std::string>{"v2"}),
      {src}, RowSchema({"v", "v2"}));
  int proj = job.Add(std::make_unique<ProjectOp>(std::vector<int>{1}),
                     {doubled}, RowSchema({"v2"}));
  int uni = job.Add(std::make_unique<UnionAllOp>(), {hi, proj},
                    RowSchema({"v"}));
  int hx = job.Add(std::make_unique<HashExchangeOp>(std::vector<int>{0}),
                   {uni}, RowSchema({"v"}));
  int grp = job.Add(
      std::make_unique<HashGroupOp>(
          std::vector<ExprPtr>{Col(0, "v")},
          std::vector<AggSpec>{{AggSpec::Kind::kCount, nullptr, "cnt"}}),
      {hx}, RowSchema({"v", "cnt"}));
  int sorted = job.Add(std::make_unique<SortOp>(std::vector<SortKey>{{0, true}}),
                       {grp}, RowSchema({"v", "cnt"}));
  job.Add(std::make_unique<MergeGatherOp>(std::vector<SortKey>{{0, true}}),
          {sorted}, RowSchema({"v", "cnt"}));
  return job;
}

/// REPLICATE: a shared node with two consumers (one through a broadcast),
/// gathered and rank-assigned (a barrier operator) at the root.
Job MakeReplicateJob() {
  Job job;
  int src =
      job.Add(std::make_unique<IntSourceOp>(20), {}, RowSchema({"v"}));
  int shared = job.Add(
      std::make_unique<AssignOp>(
          std::vector<ExprPtr>{*Call("mul", {Col(0, "v"),
                                             Lit(Value::Int64(3))})},
          std::vector<std::string>{"v3"}),
      {src}, RowSchema({"v", "v3"}));
  int branch_a = job.Add(std::make_unique<ProjectOp>(std::vector<int>{1}),
                         {shared}, RowSchema({"v3"}));
  int branch_b = job.Add(std::make_unique<ProjectOp>(std::vector<int>{0}),
                         {shared}, RowSchema({"v"}));
  int bcast = job.Add(std::make_unique<BroadcastExchangeOp>(), {branch_b},
                      RowSchema({"v"}));
  int uni = job.Add(std::make_unique<UnionAllOp>(), {branch_a, bcast},
                    RowSchema({"x"}));
  int gather =
      job.Add(std::make_unique<GatherOp>(), {uni}, RowSchema({"x"}));
  job.Add(std::make_unique<RankAssignOp>(), {gather},
          RowSchema({"x", "rank"}));
  return job;
}

TEST(SchedulerTest, DiamondIdenticalAcrossExecutorsAndPoolSizes) {
  Job job = MakeDiamondJob();
  RunOutcome base = RunJob(job, ExecutorKind::kStageSequential, 1);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  EXPECT_FALSE(base.rows.empty());
  for (ExecutorKind kind : kKinds) {
    for (size_t pool : kPoolSizes) {
      RunOutcome o = RunJob(job, kind, pool);
      ASSERT_TRUE(o.status.ok()) << o.status.ToString();
      EXPECT_EQ(o.rows, base.rows) << "pool " << pool;
      EXPECT_EQ(o.ops, base.ops) << "pool " << pool;
    }
  }
}

TEST(SchedulerTest, ReplicateIdenticalAcrossExecutorsAndPoolSizes) {
  Job job = MakeReplicateJob();
  RunOutcome base = RunJob(job, ExecutorKind::kStageSequential, 1);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  for (ExecutorKind kind : kKinds) {
    for (size_t pool : kPoolSizes) {
      RunOutcome o = RunJob(job, kind, pool);
      ASSERT_TRUE(o.status.ok()) << o.status.ToString();
      EXPECT_EQ(o.rows, base.rows) << "pool " << pool;
      EXPECT_EQ(o.ops, base.ops) << "pool " << pool;
    }
  }
}

TEST(SchedulerTest, LowestFailingPartitionWinsUnderAnyInterleaving) {
  Job job;
  int src = job.Add(std::make_unique<IntSourceOp>(5), {}, RowSchema({"v"}));
  int fail = job.Add(std::make_unique<FailOp>(std::set<int>{1, 3}), {src},
                     RowSchema({"v"}));
  job.Add(std::make_unique<GatherOp>(), {fail}, RowSchema({"v"}));
  const std::string expected = "node 1 (FAIL): partition 1: boom 1";
  for (ExecutorKind kind : kKinds) {
    for (size_t pool : kPoolSizes) {
      for (int trial = 0; trial < 5; ++trial) {
        RunOutcome o = RunJob(job, kind, pool);
        ASSERT_FALSE(o.status.ok());
        EXPECT_EQ(o.status.message(), expected) << "pool " << pool;
      }
    }
  }
}

TEST(SchedulerTest, LowestFailingNodeWinsAcrossParallelBranches) {
  // Two independent branches fail; the lower node id must be reported no
  // matter which branch's task happens to fail first on the pool.
  Job job;
  int src = job.Add(std::make_unique<IntSourceOp>(5), {}, RowSchema({"v"}));
  int f1 = job.Add(std::make_unique<FailOp>(std::set<int>{3}), {src},
                   RowSchema({"v"}));
  int f2 = job.Add(std::make_unique<FailOp>(std::set<int>{0}), {src},
                   RowSchema({"v"}));
  int uni =
      job.Add(std::make_unique<UnionAllOp>(), {f1, f2}, RowSchema({"v"}));
  job.Add(std::make_unique<GatherOp>(), {uni}, RowSchema({"v"}));
  const std::string expected = "node 1 (FAIL): partition 3: boom 3";
  for (ExecutorKind kind : kKinds) {
    for (size_t pool : kPoolSizes) {
      for (int trial = 0; trial < 5; ++trial) {
        RunOutcome o = RunJob(job, kind, pool);
        ASSERT_FALSE(o.status.ok());
        EXPECT_EQ(o.status.message(), expected) << "pool " << pool;
      }
    }
  }
}

TEST(SchedulerTest, ExchangeRoutingErrorsMatch) {
  Job job;
  int src = job.Add(std::make_unique<IntSourceOp>(5), {}, RowSchema({"v"}));
  job.Add(std::make_unique<HashExchangeOp>(std::vector<int>{5}), {src},
          RowSchema({"v"}));
  const std::string expected =
      "node 1 (HASH-EXCHANGE): HASH-EXCHANGE key column out of range";
  for (ExecutorKind kind : kKinds) {
    for (size_t pool : kPoolSizes) {
      RunOutcome o = RunJob(job, kind, pool);
      ASSERT_FALSE(o.status.ok());
      EXPECT_EQ(o.status.message(), expected) << "pool " << pool;
    }
  }
}

TEST(SchedulerTest, BarrierOperatorErrorsMatch) {
  Job job;
  int src = job.Add(std::make_unique<IntSourceOp>(5), {}, RowSchema({"v"}));
  job.Add(std::make_unique<RankAssignOp>(), {src}, RowSchema({"v", "rank"}));
  const std::string expected =
      "node 1 (RANK-ASSIGN): RANK-ASSIGN requires a gathered "
      "(single-partition) input";
  for (ExecutorKind kind : kKinds) {
    for (size_t pool : kPoolSizes) {
      RunOutcome o = RunJob(job, kind, pool);
      ASSERT_FALSE(o.status.ok());
      EXPECT_EQ(o.status.message(), expected) << "pool " << pool;
    }
  }
}

TEST(SchedulerTest, ValidationErrorsMatch) {
  // A missing dataset fails in Prepare (scheduler: at graph build; stage
  // sequential: when the node executes) — the error string must not differ.
  Job job;
  job.Add(std::make_unique<DataScanOp>("nonexistent"), {}, RowSchema({"t"}));
  RunOutcome base = RunJob(job, ExecutorKind::kStageSequential, 1);
  ASSERT_FALSE(base.status.ok());
  EXPECT_NE(base.status.message().find("node 0"), std::string::npos);
  for (ExecutorKind kind : kKinds) {
    for (size_t pool : kPoolSizes) {
      RunOutcome o = RunJob(job, kind, pool);
      ASSERT_FALSE(o.status.ok());
      EXPECT_EQ(o.status.message(), base.status.message());
      EXPECT_EQ(o.status.code(), base.status.code());
    }
  }
}

TEST(SchedulerTest, SharedInputIsNotCorruptedByExchangeStealing) {
  // One node feeds both a gather and a hash exchange. Tuple stealing must
  // not fire for shared inputs (scheduler) or must fire only for the last
  // consumer (stage-sequential) — either way both consumers see full data.
  Job job;
  int src = job.Add(std::make_unique<IntSourceOp>(10), {}, RowSchema({"v"}));
  int g = job.Add(std::make_unique<GatherOp>(), {src}, RowSchema({"v"}));
  int hx = job.Add(std::make_unique<HashExchangeOp>(std::vector<int>{0}),
                   {src}, RowSchema({"v"}));
  job.Add(std::make_unique<UnionAllOp>(), {g, hx}, RowSchema({"v"}));
  RunOutcome base = RunJob(job, ExecutorKind::kStageSequential, 1);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  for (ExecutorKind kind : kKinds) {
    for (size_t pool : kPoolSizes) {
      RunOutcome o = RunJob(job, kind, pool);
      ASSERT_TRUE(o.status.ok()) << o.status.ToString();
      EXPECT_EQ(o.rows, base.rows) << "pool " << pool;
      EXPECT_EQ(o.ops, base.ops) << "pool " << pool;
    }
  }
}

/// Merge gather whose one-shot Route() burns measurable wall time. Routing
/// stays implicit (empty table), like the real MergeGatherOp.
class SlowRouteMergeGatherOp : public MergeGatherOp {
 public:
  using MergeGatherOp::MergeGatherOp;
  std::string name() const override { return "SLOW-MERGE-GATHER"; }
  Result<Routing> Route(ExecContext& ctx, const PartitionedRows& in) override {
    Stopwatch sw;
    while (sw.ElapsedSeconds() < 0.1) {
    }
    return ExchangeOperator::Route(ctx, in);
  }
};

TEST(SchedulerTest, MergeGatherRouteTimeNotChargedToIdleDestinations) {
  // Regression: implicit-routing exchanges (gather, merge-gather, broadcast)
  // used to spread the one-shot Route() cost evenly over every destination
  // partition, so a merge-gather that steals all tuples into destination 0
  // charged idle victims 1/parts of the route time each. With a 100 ms burn
  // and 4 partitions the old even spread puts ~25 ms on each victim; the
  // fixed accounting leaves them at build-only cost (microseconds).
  Job job;
  int src = job.Add(std::make_unique<IntSourceOp>(40), {}, RowSchema({"v"}));
  job.Add(std::make_unique<SlowRouteMergeGatherOp>(
              std::vector<SortKey>{{0, true}}),
          {src}, RowSchema({"v"}));
  for (ExecutorKind kind : kKinds) {
    for (size_t pool : {size_t{0}, size_t{2}}) {
      std::unique_ptr<ThreadPool> tp;
      if (pool > 0) tp = std::make_unique<ThreadPool>(pool);
      ExecStats stats;
      ExecContext ctx;
      ctx.pool = tp.get();
      ctx.topology = {2, 2};
      ctx.stats = &stats;
      ctx.executor = kind;
      Result<PartitionedRows> out = Executor::Run(job, ctx);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      const OpStats* mg = nullptr;
      for (const OpStats& op : stats.ops) {
        if (op.name == "SLOW-MERGE-GATHER") mg = &op;
      }
      ASSERT_NE(mg, nullptr);
      EXPECT_EQ(mg->partition_rows, (std::vector<uint64_t>{160, 0, 0, 0}));
      ASSERT_EQ(mg->partition_seconds.size(), 4u);
      for (int p = 1; p < 4; ++p) {
        EXPECT_LT(mg->partition_seconds[p], 0.010)
            << "victim partition " << p << " charged route time (executor "
            << static_cast<int>(kind) << ", pool " << pool << ")";
      }
    }
  }
}

}  // namespace
}  // namespace simdb::hyracks
