// Concurrency test suite for the serving layer: N client threads against one
// QueryEngine, plus cancellation / deadline / admission / quota / fairness
// regressions. Runs under TSan in CI — the stress tests double as data-race
// detectors for the whole engine stack (scheduler, thread pool, catalogs,
// posting caches, metrics).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "observability/metrics.h"
#include "serving/admission.h"
#include "serving/query_engine.h"
#include "storage/file_util.h"

namespace simdb {
namespace {

using adm::Value;
using serving::QueryClass;
using serving::QueryEngine;
using serving::QueryTicket;
using serving::ServingOptions;
using serving::SubmitOptions;
using serving::WeightedQueue;

// ---------- slow-UDF instrumentation ----------

/// Gate the slow UDF blocks on: tests wait for the query to be provably
/// mid-execution (entered > 0), act (cancel, fill the queue, ...), then
/// open. Timeouts everywhere so a bug fails the test instead of hanging it.
struct SlowGate {
  Mutex mu{lockrank::Rank::kLeaf, "SlowGate::mu"};
  CondVar cv;
  bool open SIMDB_GUARDED_BY(mu) = false;
  int entered SIMDB_GUARDED_BY(mu) = 0;

  void Enter() {
    MutexLock lock(mu);
    ++entered;
    cv.NotifyAll();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!open) {
      if (!cv.WaitUntil(lock, deadline)) break;  // timed out; fail the test
    }
  }
  void Open() {
    {
      MutexLock lock(mu);
      open = true;
    }
    cv.NotifyAll();
  }
  bool AwaitEntered(int n) {
    MutexLock lock(mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (entered < n) {
      if (!cv.WaitUntil(lock, deadline)) return entered >= n;
    }
    return true;
  }
};

std::atomic<SlowGate*> g_gate{nullptr};
std::atomic<int> g_sleep_ms{0};

/// String equality as a similarity score, optionally gated/slowed. Lets the
/// tests build reliably long-running joins with controllable timing.
void RegisterSlowUdf(core::QueryProcessor& processor) {
  processor.RegisterSimilarityUdf(
      {.name = "slow-eq",
       .sense = similarity::ThresholdSense::kSimilarityAtLeast,
       .eval =
           [](const Value& a, const Value& b) -> Result<Value> {
             SlowGate* gate = g_gate.load(std::memory_order_acquire);
             if (gate != nullptr) gate->Enter();
             int ms = g_sleep_ms.load(std::memory_order_relaxed);
             if (ms > 0) {
               std::this_thread::sleep_for(std::chrono::milliseconds(ms));
             }
             if (!a.is_string() || !b.is_string()) {
               return Status::TypeError("slow-eq expects strings");
             }
             return Value::Double(a.AsString() == b.AsString() ? 1.0 : 0.0);
           },
       .check = nullptr});
}

// ---------- fixture ----------

class ServingTest : public ::testing::Test {
 protected:
  ServingTest() {
    static int counter = 0;
    dir_ = (std::filesystem::temp_directory_path() /
            ("simdb_serving_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    g_gate.store(nullptr);
    g_sleep_ms.store(0);
  }
  ~ServingTest() override {
    g_gate.store(nullptr);
    engine_.reset();
    storage::RemoveAllBestEffort(dir_);
  }

  /// Builds the engine over a deterministic dataset: `records` rows cycling
  /// through 8 names and composite summaries (enough similarity collisions
  /// for joins to produce non-trivial answers).
  QueryEngine& MakeEngine(ServingOptions serving, int records = 24) {
    core::EngineOptions options;
    options.data_dir = dir_;
    options.topology = {2, 2};
    options.num_threads = 4;
    engine_ = std::make_unique<QueryEngine>(options, serving);
    core::QueryProcessor& p = engine_->processor();
    RegisterSlowUdf(p);
    EXPECT_TRUE(p.Execute("create dataset D primary key id;"
                          "create index kw on D(text) type keyword;"
                          "create index ng on D(name) type ngram(2);")
                    .ok());
    const char* names[] = {"maria", "mario", "marla", "james",
                           "jamie", "mary",  "bob",   "alice"};
    const char* words[] = {"great", "product", "fantastic", "gift",
                           "movie", "heart",   "car",       "charger"};
    for (int i = 0; i < records; ++i) {
      std::string text = std::string(words[i % 8]) + " " +
                         words[(i / 2) % 8] + " " + words[(i / 3) % 8];
      EXPECT_TRUE(p.Insert("D", Value::MakeObject(
                                    {{"id", Value::Int64(i)},
                                     {"name", Value::String(names[i % 8])},
                                     {"text", Value::String(text)}}))
                      .ok());
    }
    return *engine_;
  }

  static std::vector<std::string> SortedRows(const core::QueryResult& r) {
    std::vector<std::string> rows;
    rows.reserve(r.rows.size());
    for (const Value& v : r.rows) rows.push_back(v.ToJson());
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  /// Sequential ground truth through the exclusive single-session path.
  std::vector<std::string> Baseline(const std::string& aql) {
    core::QueryResult result;
    Status s = engine_->processor().Execute(aql, &result);
    EXPECT_TRUE(s.ok()) << s.ToString() << "\nquery: " << aql;
    return SortedRows(result);
  }

  std::string dir_;
  std::unique_ptr<QueryEngine> engine_;
};

const char kCheapJaccard[] =
    "for $t in dataset D where similarity-jaccard(word-tokens($t.text), "
    "word-tokens('great product fantastic')) >= 0.5 return $t;";
const char kCheapEd[] =
    "for $t in dataset D where edit-distance($t.name, 'maria') <= 1 "
    "return $t;";
const char kHeavyJaccard[] =
    "for $o in dataset D for $i in dataset D where "
    "similarity-jaccard(word-tokens($o.text), word-tokens($i.text)) >= 0.6 "
    "and $o.id < $i.id return {'o': $o.id, 'i': $i.id};";
const char kHeavyEd[] =
    "for $o in dataset D for $i in dataset D where "
    "edit-distance($o.name, $i.name) <= 1 and $o.id < $i.id "
    "return {'o': $o.id, 'i': $i.id};";
/// Nested-loop self join through the instrumentable UDF.
const char kSlowJoin[] =
    "for $o in dataset D for $i in dataset D where "
    "slow-eq($o.name, $i.name) >= 0.5 and $o.id < $i.id "
    "return {'o': $o.id, 'i': $i.id};";

// ---------- the concurrency stress test ----------

TEST_F(ServingTest, ConcurrentStressMixedWorkload) {
  obs::MetricsRegistry::Global().ResetAll();
  ServingOptions serving;
  serving.max_concurrent = 4;
  serving.max_queue = 256;
  QueryEngine& engine = MakeEngine(serving);

  const std::vector<std::string> queries = {kCheapJaccard, kCheapEd,
                                            kHeavyJaccard, kHeavyEd};
  std::vector<std::vector<std::string>> expected;
  expected.reserve(queries.size());
  for (const std::string& q : queries) expected.push_back(Baseline(q));

  constexpr int kClients = 32;
  constexpr int kPerClient = 3;
  std::atomic<int> wrong_rows{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < kPerClient; ++q) {
        size_t qi = static_cast<size_t>(c + q) % queries.size();
        Result<std::shared_ptr<QueryTicket>> ticket =
            engine.Submit(queries[qi]);
        if (!ticket.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const Status& s = ticket.value()->Wait();
        if (!s.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // No lost rows, no duplicated rows, bit-identical content.
        if (SortedRows(ticket.value()->result()) != expected[qi]) {
          wrong_rows.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wrong_rows.load(), 0);

  serving::ServingStats stats = engine.Stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.admitted, stats.submitted);  // queue sized to never shed
  EXPECT_EQ(stats.completed, stats.admitted);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_LE(stats.peak_queue_depth, serving.max_queue);

  // Queue-depth metrics must be consistent with the admission counters: one
  // depth observation per admitted query, counters matching engine stats.
  obs::MetricsRegistry::Snapshot snap = obs::MetricsRegistry::Global().Snap();
  EXPECT_EQ(snap.counters["serving.admitted"], stats.admitted);
  EXPECT_EQ(snap.counters["serving.completed"], stats.completed);
  EXPECT_EQ(snap.histograms["serving.queue_depth"].count, stats.admitted);
  EXPECT_EQ(snap.histograms["serving.latency_micros"].count, stats.admitted);
}

// ---------- cancellation & deadlines ----------

TEST_F(ServingTest, CancelMidJoinDrainsTasksAndReleasesMemory) {
  ServingOptions serving;
  serving.max_concurrent = 2;
  QueryEngine& engine = MakeEngine(serving);

  SlowGate gate;
  g_gate.store(&gate, std::memory_order_release);
  Result<std::shared_ptr<QueryTicket>> ticket = engine.Submit(kSlowJoin);
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(gate.AwaitEntered(1));  // provably mid-join
  ticket.value()->Cancel();
  gate.Open();

  const Status& s = ticket.value()->Wait();
  EXPECT_EQ(s.code(), StatusCode::kCancelled) << s.ToString();

  // The scheduler drained: every planned task either executed or was
  // skipped, nothing is left behind, and the memory quota returned to zero.
  const hyracks::ExecStats& exec = ticket.value()->result().exec;
  EXPECT_GT(exec.tasks_total, 0u);
  EXPECT_EQ(exec.tasks_executed + exec.tasks_skipped, exec.tasks_total);
  EXPECT_GT(exec.tasks_skipped, 0u);
  EXPECT_EQ(ticket.value()->budget().memory_in_use(), 0);

  // The engine is healthy: the identical query now succeeds with the right
  // answer (gate stays open, no sleeping).
  g_gate.store(nullptr, std::memory_order_release);
  std::vector<std::string> expected = Baseline(kSlowJoin);
  Result<std::shared_ptr<QueryTicket>> again = engine.Submit(kSlowJoin);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value()->Wait().ok());
  EXPECT_EQ(SortedRows(again.value()->result()), expected);
}

TEST_F(ServingTest, CancelWhileQueuedNeverExecutes) {
  ServingOptions serving;
  serving.max_concurrent = 1;
  serving.max_queue = 4;
  QueryEngine& engine = MakeEngine(serving, /*records=*/8);

  SlowGate gate;
  g_gate.store(&gate, std::memory_order_release);
  Result<std::shared_ptr<QueryTicket>> blocker = engine.Submit(kSlowJoin);
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(gate.AwaitEntered(1));

  Result<std::shared_ptr<QueryTicket>> queued = engine.Submit(kCheapEd);
  ASSERT_TRUE(queued.ok());
  queued.value()->Cancel();
  gate.Open();
  g_gate.store(nullptr, std::memory_order_release);

  const Status& s = queued.value()->Wait();
  EXPECT_EQ(s.code(), StatusCode::kCancelled) << s.ToString();
  EXPECT_EQ(queued.value()->result().exec.tasks_total, 0u);  // never ran
  EXPECT_TRUE(blocker.value()->Wait().ok());
}

TEST_F(ServingTest, DeadlineExpiresMidExecution) {
  ServingOptions serving;
  serving.max_concurrent = 2;
  QueryEngine& engine = MakeEngine(serving, /*records=*/8);

  g_sleep_ms.store(10);
  SubmitOptions opts;
  opts.deadline_seconds = 0.05;  // expires while join tasks are sleeping
  Result<std::shared_ptr<QueryTicket>> ticket =
      engine.Submit(kSlowJoin, opts);
  ASSERT_TRUE(ticket.ok());
  const Status& s = ticket.value()->Wait();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
  const hyracks::ExecStats& exec = ticket.value()->result().exec;
  EXPECT_EQ(exec.tasks_executed + exec.tasks_skipped, exec.tasks_total);
  EXPECT_EQ(ticket.value()->budget().memory_in_use(), 0);
  EXPECT_EQ(engine.Stats().deadline_exceeded, 1u);
}

TEST_F(ServingTest, DeadlineCoversQueueWait) {
  ServingOptions serving;
  serving.max_concurrent = 1;
  serving.max_queue = 4;
  QueryEngine& engine = MakeEngine(serving, /*records=*/8);

  SlowGate gate;
  g_gate.store(&gate, std::memory_order_release);
  Result<std::shared_ptr<QueryTicket>> blocker = engine.Submit(kSlowJoin);
  ASSERT_TRUE(blocker.ok());
  ASSERT_TRUE(gate.AwaitEntered(1));

  SubmitOptions opts;
  opts.deadline_seconds = 0.02;
  Result<std::shared_ptr<QueryTicket>> queued = engine.Submit(kCheapEd, opts);
  ASSERT_TRUE(queued.ok());
  // Let the deadline lapse while the query is still waiting in the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.Open();
  g_gate.store(nullptr, std::memory_order_release);

  const Status& s = queued.value()->Wait();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
  EXPECT_EQ(queued.value()->result().exec.tasks_total, 0u);
  EXPECT_TRUE(blocker.value()->Wait().ok());
}

// ---------- admission control ----------

TEST_F(ServingTest, QueueOverflowShedsLoadWithDistinctStatus) {
  ServingOptions serving;
  serving.max_concurrent = 1;
  serving.max_queue = 2;
  QueryEngine& engine = MakeEngine(serving, /*records=*/8);

  SlowGate gate;
  g_gate.store(&gate, std::memory_order_release);
  Result<std::shared_ptr<QueryTicket>> running = engine.Submit(kSlowJoin);
  ASSERT_TRUE(running.ok());
  ASSERT_TRUE(gate.AwaitEntered(1));  // occupies the only worker

  Result<std::shared_ptr<QueryTicket>> q1 = engine.Submit(kCheapEd);
  Result<std::shared_ptr<QueryTicket>> q2 = engine.Submit(kCheapJaccard);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  Result<std::shared_ptr<QueryTicket>> shed = engine.Submit(kCheapEd);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kOverloaded)
      << shed.status().ToString();

  gate.Open();
  g_gate.store(nullptr, std::memory_order_release);
  EXPECT_TRUE(running.value()->Wait().ok());
  EXPECT_TRUE(q1.value()->Wait().ok());
  EXPECT_TRUE(q2.value()->Wait().ok());

  serving::ServingStats stats = engine.Stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.peak_queue_depth, 2u);
}

TEST_F(ServingTest, MemoryQuotaRefusedBeforeExecution) {
  ServingOptions serving;
  QueryEngine& engine = MakeEngine(serving);  // 24 records

  SubmitOptions opts;
  opts.memory_quota_bytes = 100;  // 24 * 128 estimated scan bytes >> 100
  Result<std::shared_ptr<QueryTicket>> ticket =
      engine.Submit("for $t in dataset D return $t;", opts);
  ASSERT_TRUE(ticket.ok());
  const Status& s = ticket.value()->Wait();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_NE(s.message().find("admission:"), std::string::npos)
      << s.ToString();
  // Refused pre-execution: no task was planned or run.
  EXPECT_EQ(ticket.value()->result().exec.tasks_total, 0u);
  EXPECT_EQ(ticket.value()->budget().tasks_started(), 0);
  EXPECT_EQ(engine.Stats().rejected_quota, 1u);
}

TEST_F(ServingTest, TaskQuotaTripsMidExecutionAndDrains) {
  ServingOptions serving;
  QueryEngine& engine = MakeEngine(serving);

  SubmitOptions opts;
  opts.task_quota = 3;  // a distributed join needs far more tasks
  Result<std::shared_ptr<QueryTicket>> ticket =
      engine.Submit(kHeavyJaccard, opts);
  ASSERT_TRUE(ticket.ok());
  const Status& s = ticket.value()->Wait();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_NE(s.message().find("task quota"), std::string::npos);
  const hyracks::ExecStats& exec = ticket.value()->result().exec;
  EXPECT_GT(exec.tasks_total, 3u);
  EXPECT_LE(exec.tasks_executed, 3u);
  EXPECT_EQ(exec.tasks_executed + exec.tasks_skipped, exec.tasks_total);
  EXPECT_EQ(ticket.value()->budget().memory_in_use(), 0);
}

TEST_F(ServingTest, MemoryAccountingPeaksThenReturnsToZero) {
  ServingOptions serving;
  QueryEngine& engine = MakeEngine(serving);

  SubmitOptions opts;
  opts.memory_quota_bytes = 1 << 24;  // generous: query must succeed
  std::vector<std::string> expected = Baseline(kHeavyJaccard);
  Result<std::shared_ptr<QueryTicket>> ticket =
      engine.Submit(kHeavyJaccard, opts);
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(ticket.value()->Wait().ok())
      << ticket.value()->status().ToString();
  EXPECT_EQ(SortedRows(ticket.value()->result()), expected);
  EXPECT_GT(ticket.value()->budget().peak_memory_bytes(), 0);
  EXPECT_EQ(ticket.value()->budget().memory_in_use(), 0);
  const hyracks::ExecStats& exec = ticket.value()->result().exec;
  EXPECT_GT(exec.tasks_total, 0u);
  EXPECT_EQ(exec.tasks_executed, exec.tasks_total);
  EXPECT_EQ(exec.tasks_skipped, 0u);
}

TEST_F(ServingTest, ParseErrorsAndDdlAreRefused) {
  ServingOptions serving;
  QueryEngine& engine = MakeEngine(serving, /*records=*/8);

  Result<std::shared_ptr<QueryTicket>> bad = engine.Submit("for $t in (((;");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(engine.Stats().rejected_parse, 1u);

  Result<std::shared_ptr<QueryTicket>> ddl =
      engine.Submit("create dataset X primary key id;");
  ASSERT_TRUE(ddl.ok());  // parses fine; refused at execution
  const Status& s = ddl.value()->Wait();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_NE(s.message().find("not allowed on a concurrent session"),
            std::string::npos);
}

// ---------- fairness ----------

TEST_F(ServingTest, ReservedSlotBoundsCheapLatencyUnderHeavyLoad) {
  ServingOptions serving;
  serving.max_concurrent = 2;
  serving.reserve_cheap_slot = true;
  serving.max_queue = 32;
  QueryEngine& engine = MakeEngine(serving, /*records=*/16);

  g_sleep_ms.store(10);  // each heavy join sleeps for hundreds of ms
  std::vector<std::shared_ptr<QueryTicket>> heavies;
  for (int i = 0; i < 3; ++i) {
    Result<std::shared_ptr<QueryTicket>> t = engine.Submit(kSlowJoin);
    ASSERT_TRUE(t.ok());
    ASSERT_EQ(t.value()->query_class(), QueryClass::kHeavy);
    heavies.push_back(t.value());
  }
  std::vector<std::shared_ptr<QueryTicket>> cheaps;
  for (int i = 0; i < 6; ++i) {
    Result<std::shared_ptr<QueryTicket>> t = engine.Submit(kCheapEd);
    ASSERT_TRUE(t.ok());
    ASSERT_EQ(t.value()->query_class(), QueryClass::kCheap);
    cheaps.push_back(t.value());
  }

  for (const auto& t : cheaps) EXPECT_TRUE(t->Wait().ok());
  // The reserved slot kept cheap queries flowing: when the last selection
  // finished, the heavy backlog (3 serialized joins on the general worker)
  // was still mostly unfinished.
  int heavies_done = 0;
  for (const auto& t : heavies) heavies_done += t->Done() ? 1 : 0;
  EXPECT_LE(heavies_done, 1);

  g_sleep_ms.store(0);
  for (const auto& t : heavies) EXPECT_TRUE(t->Wait().ok());
}

// ---------- determinism across serving paths ----------

TEST_F(ServingTest, RuntimeErrorsIdenticalToSequentialPath) {
  ServingOptions serving;
  QueryEngine& engine = MakeEngine(serving, /*records=*/8);
  const std::string bad_query =
      "for $t in dataset D where edit-distance($t.id, 'x') <= 1 return $t;";

  // Generated variable ids ($v<n>_t) come from a process-global fresh-name
  // counter and differ per compilation; the determinism under test is the
  // node/partition/message, so normalize them away.
  auto normalized = [](const Status& s) {
    std::string text = s.ToString();
    std::string out;
    for (size_t i = 0; i < text.size(); ++i) {
      out.push_back(text[i]);
      if (text[i] == 'v' && i > 0 && text[i - 1] == '$') {
        while (i + 1 < text.size() && std::isdigit(text[i + 1])) ++i;
      }
    }
    return out;
  };

  core::QueryResult sequential;
  Status seq = engine.processor().Execute(bad_query, &sequential);
  ASSERT_FALSE(seq.ok());

  // The concurrent path reports the same error (lowest (node, partition)
  // wins regardless of interleaving), every time.
  for (int i = 0; i < 4; ++i) {
    Result<std::shared_ptr<QueryTicket>> t = engine.Submit(bad_query);
    ASSERT_TRUE(t.ok());
    const Status& s = t.value()->Wait();
    EXPECT_EQ(normalized(s), normalized(seq));
  }
}

TEST_F(ServingTest, SessionSettingsAreIsolated) {
  ServingOptions serving;
  serving.max_concurrent = 4;
  QueryEngine& engine = MakeEngine(serving);

  std::shared_ptr<serving::Session> m_session = engine.CreateSession();
  m_session->set_prelude(
      "set simfunction 'slow-eq'; set simthreshold '1.0';");
  std::shared_ptr<serving::Session> b_session = engine.CreateSession();
  b_session->set_prelude(
      "set simfunction 'slow-eq'; set simthreshold '0.5';");

  // 24 records cycle 8 names, so each name appears exactly 3 times; with
  // threshold 1.0 `~= 'maria'` matches only exact 'maria' rows.
  const std::string query =
      "count(for $t in dataset D where $t.name ~= 'maria' return $t);";
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      serving::Session& session = (c % 2 == 0) ? *m_session : *b_session;
      for (int i = 0; i < 3; ++i) {
        Result<std::shared_ptr<QueryTicket>> t = session.Submit(query);
        if (!t.ok() || !t.value()->Wait().ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const core::QueryResult& r = t.value()->result();
        // Both preludes pin the same function; thresholds differ but
        // slow-eq only scores 0 or 1, so both sessions must count the 3
        // exact 'maria' rows — if session state leaked mid-optimization
        // (e.g. another session's simfunction), counts would drift.
        if (r.rows.size() != 1 || !r.rows[0].is_int64() ||
            r.rows[0].AsInt64() != 3) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(m_session->queries_submitted(), 12u);
  EXPECT_EQ(b_session->queries_submitted(), 12u);
}

// ---------- WeightedQueue unit tests ----------

TEST(WeightedQueueTest, WeightedDequeueOrderIsDeterministic) {
  WeightedQueue q(/*max_depth=*/16, /*cheap_weight=*/3.0,
                  /*heavy_weight=*/1.0);
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(q.TryPush(QueryClass::kCheap, 100 + i));
    ASSERT_TRUE(q.TryPush(QueryClass::kHeavy, 200 + i));
  }
  std::vector<QueryClass> order;
  QueryClass c;
  uint64_t id = 0;
  while (q.Pop(&c, &id)) order.push_back(c);
  // 3:1 cheap:heavy while both classes are backlogged, ties to cheap, then
  // the heavy tail drains.
  const std::vector<QueryClass> expected = {
      QueryClass::kCheap, QueryClass::kCheap, QueryClass::kCheap,
      QueryClass::kHeavy, QueryClass::kCheap, QueryClass::kCheap,
      QueryClass::kCheap, QueryClass::kHeavy, QueryClass::kHeavy,
      QueryClass::kHeavy, QueryClass::kHeavy, QueryClass::kHeavy};
  EXPECT_EQ(order, expected);
}

TEST(WeightedQueueTest, BoundedDepthAndFifoWithinClass) {
  WeightedQueue q(/*max_depth=*/2, 1.0, 1.0);
  EXPECT_TRUE(q.TryPush(QueryClass::kCheap, 1));
  EXPECT_TRUE(q.TryPush(QueryClass::kHeavy, 2));
  EXPECT_FALSE(q.TryPush(QueryClass::kCheap, 3));  // full -> shed
  EXPECT_EQ(q.depth(), 2u);

  QueryClass c;
  uint64_t id = 0;
  ASSERT_TRUE(q.PopClass(QueryClass::kCheap, &c, &id));
  EXPECT_EQ(id, 1u);
  EXPECT_FALSE(q.PopClass(QueryClass::kCheap, &c, &id));
  ASSERT_TRUE(q.Pop(&c, &id));
  EXPECT_EQ(id, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(WeightedQueueTest, RemoveDropsQueuedEntry) {
  WeightedQueue q(8, 1.0, 1.0);
  ASSERT_TRUE(q.TryPush(QueryClass::kHeavy, 7));
  ASSERT_TRUE(q.TryPush(QueryClass::kHeavy, 8));
  EXPECT_TRUE(q.Remove(7));
  EXPECT_FALSE(q.Remove(7));
  QueryClass c;
  uint64_t id = 0;
  ASSERT_TRUE(q.Pop(&c, &id));
  EXPECT_EQ(id, 8u);
}

// ---------- CancellationToken / ResourceBudget unit tests ----------

TEST(CancellationTokenTest, CancelWinsOverDeadline) {
  CancellationToken token;
  EXPECT_TRUE(token.Check().ok());
  token.SetDeadlineAfter(-1);  // disarmed
  EXPECT_FALSE(token.deadline_expired());
  token.SetDeadlineAfter(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  token.RequestCancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(ResourceBudgetTest, MemoryChargeRollsBackOnRefusal) {
  hyracks::ResourceBudget budget(/*max_memory_bytes=*/100, /*max_tasks=*/2);
  EXPECT_TRUE(budget.ChargeMemory(60).ok());
  Status s = budget.ChargeMemory(60);  // would reach 120 > 100
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.memory_in_use(), 60);  // refused charge rolled back
  budget.ReleaseMemory(60);
  EXPECT_EQ(budget.memory_in_use(), 0);
  EXPECT_EQ(budget.peak_memory_bytes(), 60);

  EXPECT_TRUE(budget.ChargeTask().ok());
  EXPECT_TRUE(budget.ChargeTask().ok());
  EXPECT_EQ(budget.ChargeTask().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceBudgetTest, ZeroMeansUnlimited) {
  hyracks::ResourceBudget budget;
  EXPECT_TRUE(budget.ChargeMemory(1 << 30).ok());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(budget.ChargeTask().ok());
}

}  // namespace
}  // namespace simdb
