#include <gtest/gtest.h>

#include "aql/lexer.h"
#include "aql/parser.h"
#include "aql/translator.h"

namespace simdb::aql {
namespace {

using algebricks::LOpKind;

// ---------- lexer ----------

TEST(LexerTest, BasicTokens) {
  auto tokens = *Lex("for $t in dataset X where $t.a >= 0.5f return $t");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "for");
  EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[1].text, "t");
}

TEST(LexerTest, FloatSuffixAndLeadingDot) {
  auto tokens = *Lex(".5f 0.8 2 'str'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 0.5);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_EQ(tokens[2].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "str");
}

TEST(LexerTest, MetaTokensAndHints) {
  auto tokens = *Lex("##LEFT $$PK /*+ bcast */ /* plain comment */ ~=");
  EXPECT_EQ(tokens[0].kind, TokenKind::kMetaClause);
  EXPECT_EQ(tokens[0].text, "LEFT");
  EXPECT_EQ(tokens[1].kind, TokenKind::kMetaVar);
  EXPECT_EQ(tokens[1].text, "PK");
  EXPECT_EQ(tokens[2].kind, TokenKind::kHint);
  EXPECT_EQ(tokens[2].text, "bcast");
  EXPECT_EQ(tokens[3].kind, TokenKind::kSymbol);
  EXPECT_EQ(tokens[3].text, "~=");
}

TEST(LexerTest, DashedIdentifiers) {
  auto tokens = *Lex("similarity-jaccard(word-tokens($x))");
  EXPECT_EQ(tokens[0].text, "similarity-jaccard");
  EXPECT_EQ(tokens[2].text, "word-tokens");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("/* unterminated").ok());
  EXPECT_FALSE(Lex("$").ok());
  EXPECT_FALSE(Lex("@").ok());
}

// ---------- parser ----------

TEST(ParserTest, SimpleFlwor) {
  auto program = *ParseProgram(
      "for $t in dataset Reviews where $t.id = 3 return $t.summary");
  ASSERT_EQ(program.statements.size(), 1u);
  const Statement& stmt = program.statements[0];
  EXPECT_EQ(stmt.kind, Statement::Kind::kQuery);
  ASSERT_EQ(stmt.body->kind, AExpr::Kind::kSubquery);
  const Flwor& flwor = *stmt.body->subquery;
  ASSERT_EQ(flwor.clauses.size(), 2u);
  EXPECT_EQ(flwor.clauses[0].kind, Clause::Kind::kFor);
  EXPECT_EQ(flwor.clauses[0].var, "t");
  EXPECT_EQ(flwor.clauses[0].source->kind, AExpr::Kind::kDatasetRef);
  EXPECT_EQ(flwor.clauses[1].kind, Clause::Kind::kWhere);
  EXPECT_EQ(flwor.return_expr->kind, AExpr::Kind::kField);
}

TEST(ParserTest, Statements) {
  auto program = *ParseProgram(R"(
    use dataverse TextStore;
    set simfunction 'jaccard';
    set simthreshold '0.5';
    create dataset AmazonReview primary key id partitions 4;
    create index nix on AmazonReview(reviewerName) type ngram(2);
    create index smix on AmazonReview(summary) type keyword;
    create index bt on AmazonReview(reviewerName) type btree;
    create function my-sim($a, $b) { similarity-jaccard($a, $b) };
  )");
  ASSERT_EQ(program.statements.size(), 8u);
  EXPECT_EQ(program.statements[1].kind, Statement::Kind::kSet);
  EXPECT_EQ(program.statements[1].set_value, "jaccard");
  EXPECT_EQ(program.statements[3].partitions, 4);
  EXPECT_EQ(program.statements[4].index_type, "ngram");
  EXPECT_EQ(program.statements[4].gram_len, 2);
  EXPECT_EQ(program.statements[7].kind, Statement::Kind::kCreateFunction);
  EXPECT_EQ(program.statements[7].params.size(), 2u);
}

TEST(ParserTest, SimilarityOperator) {
  auto program = *ParseProgram(
      "for $a in dataset X for $b in dataset X "
      "where word-tokens($a.s) ~= word-tokens($b.s) return {'a': $a}");
  const Flwor& flwor = *program.statements[0].body->subquery;
  const AExprPtr& cond = flwor.clauses[2].condition;
  EXPECT_EQ(cond->kind, AExpr::Kind::kCall);
  EXPECT_EQ(cond->name, "sim-eq");
}

TEST(ParserTest, GroupByOrderByHints) {
  auto program = *ParseProgram(R"(
    for $t in dataset X
    for $tok in word-tokens($t.s)
    /*+ hash */
    group by $g := $tok with $t
    order by count($t), $g desc
    return $g
  )");
  const Flwor& flwor = *program.statements[0].body->subquery;
  const Clause& group = flwor.clauses[2];
  EXPECT_EQ(group.kind, Clause::Kind::kGroupBy);
  EXPECT_TRUE(group.hash_hint);
  EXPECT_EQ(group.group_keys[0].first, "g");
  EXPECT_EQ(group.with_vars[0], "t");
  const Clause& order = flwor.clauses[3];
  EXPECT_EQ(order.kind, Clause::Kind::kOrderBy);
  ASSERT_EQ(order.order_keys.size(), 2u);
  EXPECT_TRUE(order.order_keys[0].second);
  EXPECT_FALSE(order.order_keys[1].second);
}

TEST(ParserTest, PositionalForAndSubquery) {
  auto program = *ParseProgram(R"(
    for $t in dataset X
    for $r at $i in (for $u in dataset Y order by $u.id return $u.id)
    where $t.id = $r
    return $i
  )");
  const Flwor& flwor = *program.statements[0].body->subquery;
  EXPECT_EQ(flwor.clauses[1].pos_var, "i");
  EXPECT_EQ(flwor.clauses[1].source->kind, AExpr::Kind::kSubquery);
}

TEST(ParserTest, BcastHintOnEquality) {
  auto program = *ParseProgram(
      "for $a in dataset X for $b in dataset Y "
      "where $a.k = /*+ bcast */ $b.k return $a");
  const AExprPtr& cond =
      program.statements[0].body->subquery->clauses[2].condition;
  EXPECT_EQ(cond->name, "eq");
  EXPECT_TRUE(cond->bcast_hint);
}

TEST(ParserTest, UnionAndMetaClauses) {
  auto expr = *ParseExpression(
      "for $t in union((for $l in ##LEFT return $$LK), "
      "(for $r in ##RIGHT return $$RK)) return $t");
  const Clause& clause = expr->subquery->clauses[0];
  EXPECT_EQ(clause.source->kind, AExpr::Kind::kUnion);
  EXPECT_EQ(clause.source->branches.size(), 2u);
}

TEST(ParserTest, ExplicitJoinClause) {
  auto expr = *ParseExpression(
      "join $l in ##LEFT, $r in ##RIGHT on $l.id = $r.id return $l");
  const Clause& clause = expr->subquery->clauses[0];
  EXPECT_EQ(clause.kind, Clause::Kind::kJoin);
  EXPECT_EQ(clause.join_bindings.size(), 2u);
  ASSERT_NE(clause.join_condition, nullptr);
}

TEST(ParserTest, RecordAndListConstructors) {
  auto expr = *ParseExpression("{'a': 1, 'b': [1, 2.5, 'x'], 'c': {'d': true}}");
  EXPECT_EQ(expr->kind, AExpr::Kind::kRecord);
  EXPECT_EQ(expr->field_names.size(), 3u);
  EXPECT_EQ(expr->children[1]->kind, AExpr::Kind::kList);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseProgram("for $t in").ok());
  EXPECT_FALSE(ParseProgram("for $t in dataset X").ok());  // missing return
  EXPECT_FALSE(ParseProgram("create index i on X field type keyword").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("{'a' 1}").ok());
}

// ---------- translator ----------

Result<TranslationResult> Translate(const std::string& text) {
  SIMDB_ASSIGN_OR_RETURN(AExprPtr expr, ParseExpression(text));
  Translator translator;
  return translator.TranslateQuery(expr);
}

TEST(TranslatorTest, ScanSelectProject) {
  auto tr = Translate(
      "for $t in dataset X where $t.id = 3 return $t.summary");
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  // Project <- Assign <- Select <- DataScan
  EXPECT_EQ(tr->plan->kind, LOpKind::kProject);
  EXPECT_EQ(tr->plan->inputs[0]->kind, LOpKind::kAssign);
  EXPECT_EQ(tr->plan->inputs[0]->inputs[0]->kind, LOpKind::kSelect);
  EXPECT_EQ(tr->plan->inputs[0]->inputs[0]->inputs[0]->kind,
            LOpKind::kDataScan);
}

TEST(TranslatorTest, TwoForsBecomeJoin) {
  auto tr = Translate(
      "for $a in dataset X for $b in dataset Y "
      "where $a.id = $b.id return {'a': $a, 'b': $b}");
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  const auto& select = tr->plan->inputs[0]->inputs[0];
  EXPECT_EQ(select->kind, LOpKind::kSelect);
  EXPECT_EQ(select->inputs[0]->kind, LOpKind::kJoin);
}

TEST(TranslatorTest, CountQuery) {
  auto tr = Translate("count(for $t in dataset X return $t)");
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  EXPECT_TRUE(tr->is_count);
}

TEST(TranslatorTest, UnnestCorrelatedSource) {
  auto tr = Translate(
      "for $t in dataset X for $w in word-tokens($t.s) return $w");
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  EXPECT_EQ(tr->plan->inputs[0]->inputs[0]->kind, LOpKind::kUnnest);
}

TEST(TranslatorTest, GroupByRebindsVariables) {
  auto tr = Translate(R"(
    for $t in dataset X
    for $tok in word-tokens($t.s)
    group by $g := $tok with $t
    return { 'token': $g, 'n': count($t) }
  )");
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  const auto& group = tr->plan->inputs[0]->inputs[0];
  EXPECT_EQ(group->kind, LOpKind::kGroupBy);
  EXPECT_EQ(group->group_aggs.size(), 1u);
}

TEST(TranslatorTest, NamedSubquerySharedAcrossUses) {
  auto tr = Translate(R"(
    let $ranked := (for $u in dataset Y order by $u.id return $u.id)
    for $a in dataset X
    for $r1 at $i in $ranked
    where $a.id = $r1
    return $i
  )");
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
}

TEST(TranslatorTest, UnboundVariableFails) {
  auto tr = Translate("for $t in dataset X return $nope");
  EXPECT_FALSE(tr.ok());
}

TEST(TranslatorTest, ScalarSubqueryRejected) {
  auto tr = Translate(
      "for $t in dataset X return len(for $u in dataset Y return $u)");
  EXPECT_FALSE(tr.ok());
}

TEST(TranslatorTest, MetaBindingsResolve) {
  MetaBindings bindings;
  bindings.clauses["LEFT"] = {algebricks::MakeDataScan("X", "xrec"), "xrec"};
  bindings.vars["PK"] = algebricks::LExpr::Field(
      algebricks::LExpr::Var("xrec"), "id");
  auto expr = *ParseExpression("for $l in ##LEFT return $$PK");
  Translator translator(bindings);
  auto tr = translator.TranslateQuery(expr);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
}

TEST(TranslatorTest, UnboundMetaClauseFails) {
  auto expr = *ParseExpression("for $l in ##NOPE return $l");
  Translator translator;
  EXPECT_FALSE(translator.TranslateQuery(expr).ok());
}

TEST(TranslatorTest, UdfInlining) {
  std::map<std::string, Translator::FunctionDefAst> fns;
  auto body = *ParseExpression("similarity-jaccard($a, $b)");
  fns["my-sim"] = {{"a", "b"}, body};
  auto expr = *ParseExpression(
      "for $t in dataset X where my-sim(word-tokens($t.s), "
      "word-tokens('x')) >= 0.5 return $t");
  Translator translator({}, &fns);
  auto tr = translator.TranslateQuery(expr);
  ASSERT_TRUE(tr.ok()) << tr.status().ToString();
  // The inlined call must appear in the select condition.
  EXPECT_NE(tr->plan->ToString().find("similarity-jaccard"), std::string::npos);
}

}  // namespace
}  // namespace simdb::aql
