// Edge-case coverage for the similarity kernels: empty inputs, identical
// inputs, thresholds exactly at the boundary, single-token records, and
// tokenizer behaviour on punctuation-only text. These pin the kernel
// semantics the differential fuzzer's plan-variant comparisons rely on.
#include <gtest/gtest.h>

#include "similarity/edit_distance.h"
#include "similarity/jaccard.h"
#include "similarity/tokenizer.h"

namespace simdb::similarity {
namespace {

using Tokens = std::vector<std::string>;

// ---------------------------------------------------------------------------
// edit distance
// ---------------------------------------------------------------------------

TEST(EditDistanceEdge, EmptyStrings) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("abc", ""), 3);
}

TEST(EditDistanceEdge, IdenticalInputs) {
  EXPECT_EQ(EditDistance("maria", "maria"), 0);
  EXPECT_EQ(EditDistanceCheck("maria", "maria", 0), 0);
  Tokens list = {"ba", "ri", "to"};
  EXPECT_EQ(EditDistance(list, list), 0);
  EXPECT_EQ(EditDistanceCheck(list, list, 0), 0);
}

TEST(EditDistanceEdge, ThresholdExactlyAtBoundary) {
  // distance("marla", "maria") == 1: k == 1 accepts, k == 0 rejects.
  EXPECT_EQ(EditDistance("marla", "maria"), 1);
  EXPECT_EQ(EditDistanceCheck("marla", "maria", 1), 1);
  EXPECT_EQ(EditDistanceCheck("marla", "maria", 0), -1);
  // distance == k exactly for a 2-edit pair.
  EXPECT_EQ(EditDistance("mark", "maria"), 2);
  EXPECT_EQ(EditDistanceCheck("mark", "maria", 2), 2);
  EXPECT_EQ(EditDistanceCheck("mark", "maria", 1), -1);
}

TEST(EditDistanceEdge, CheckOnEmptyInputs) {
  EXPECT_EQ(EditDistanceCheck("", "", 0), 0);
  EXPECT_EQ(EditDistanceCheck("", "ab", 2), 2);
  EXPECT_EQ(EditDistanceCheck("", "ab", 1), -1);
  EXPECT_EQ(EditDistanceCheck("ab", "", 2), 2);
  // Negative k never matches, including on identical inputs.
  EXPECT_EQ(EditDistanceCheck("", "", -1), -1);
  EXPECT_EQ(EditDistanceCheck("same", "same", -1), -1);
}

TEST(EditDistanceEdge, TOccurrenceCornerIsNonPositive) {
  // T = (len - n + 1) - k * n with q-grams; short strings with large k fall
  // to T <= 0 where the inverted index cannot prune (paper Section 5.1.1).
  EXPECT_LE(EditDistanceTOccurrence(/*query_len=*/5, /*gram_len=*/2,
                                    /*k=*/9),
            0);
  EXPECT_GT(EditDistanceTOccurrence(/*query_len=*/30, /*gram_len=*/2,
                                    /*k=*/1),
            0);
  // k == 0 (exact match): every gram must occur.
  EXPECT_EQ(EditDistanceTOccurrence(/*query_len=*/6, /*gram_len=*/2, /*k=*/0),
            5);
}

// ---------------------------------------------------------------------------
// Jaccard
// ---------------------------------------------------------------------------

TEST(JaccardEdge, EmptySets) {
  // 0/0 is defined as 0: empty fields never match, under every plan variant.
  EXPECT_EQ(JaccardSorted({}, {}), 0.0);
  EXPECT_EQ(JaccardSorted({}, {"ba"}), 0.0);
  EXPECT_EQ(JaccardSorted({"ba"}, {}), 0.0);
  EXPECT_EQ(JaccardCheckSorted({}, {}, 0.5), -1.0);
  // delta == 0 is satisfied even by the defined-zero empty case.
  EXPECT_EQ(JaccardCheckSorted({}, {}, 0.0), 0.0);
}

TEST(JaccardEdge, IdenticalInputs) {
  Tokens t = {"ba", "ri", "to"};
  EXPECT_EQ(JaccardSorted(t, t), 1.0);
  EXPECT_EQ(JaccardCheckSorted(t, t, 1.0), 1.0);
}

TEST(JaccardEdge, ThresholdExactlyAtBoundary) {
  // |intersection| = 1, |union| = 2 -> jaccard = 0.5 exactly.
  Tokens a = {"ba", "ri"};
  Tokens b = {"ri", "to"};
  ASSERT_EQ(JaccardSorted(a, b), 1.0 / 3.0);
  Tokens c = {"ri"};
  ASSERT_EQ(JaccardSorted(c, a), 0.5);
  EXPECT_EQ(JaccardCheckSorted(c, a, 0.5), 0.5);   // >= at boundary: accept
  EXPECT_EQ(JaccardCheckSorted(c, a, 0.51), -1.0);  // just above: reject
}

TEST(JaccardEdge, SingleTokenRecords) {
  Tokens a = {"ba"};
  Tokens b = {"ba"};
  Tokens c = {"ri"};
  EXPECT_EQ(JaccardSorted(a, b), 1.0);
  EXPECT_EQ(JaccardSorted(a, c), 0.0);
  EXPECT_EQ(JaccardCheckSorted(a, b, 1.0), 1.0);
  EXPECT_EQ(JaccardCheckSorted(a, c, 0.1), -1.0);
  // Prefix length of a single-token set is always 1 for delta in (0, 1].
  EXPECT_EQ(PrefixLenJaccard(1, 0.5), 1);
  EXPECT_EQ(PrefixLenJaccard(1, 1.0), 1);
}

TEST(JaccardEdge, ThresholdZeroAndOne) {
  // delta == 0: T-occurrence lower bound clamps to 1 — the index can only
  // surface records sharing a token, which is why the optimizer must keep
  // scan plans for delta <= 0 (token-disjoint records match too).
  EXPECT_EQ(JaccardTOccurrence(0, 0.0), 1);
  EXPECT_EQ(JaccardTOccurrence(7, 0.0), 1);
  // delta == 1: all tokens must occur.
  EXPECT_EQ(JaccardTOccurrence(7, 1.0), 7);
  // Length filter degenerates gracefully at the extremes.
  EXPECT_EQ(JaccardMinLength(4, 1.0), 4);
  EXPECT_EQ(JaccardMaxLength(4, 1.0), 4);
  EXPECT_EQ(JaccardMinLength(4, 0.0), 0);
  EXPECT_GT(JaccardMaxLength(4, 0.0), 1 << 20);  // effectively unbounded
}

// ---------------------------------------------------------------------------
// tokenizer
// ---------------------------------------------------------------------------

TEST(TokenizerEdge, PunctuationOnlyText) {
  EXPECT_TRUE(WordTokens("...!?!  --- ,,,").empty());
  EXPECT_TRUE(WordTokens("").empty());
  // Punctuation-only fields therefore produce empty token sets, which can
  // never satisfy a Jaccard predicate with delta > 0.
  EXPECT_EQ(JaccardSorted(WordTokens("?!"), WordTokens("?!")), 0.0);
}

TEST(TokenizerEdge, PunctuationBoundariesAndCase) {
  EXPECT_EQ(WordTokens("Ba,ri! to"), (Tokens{"ba", "ri", "to"}));
  EXPECT_EQ(WordTokens("a--b"), (Tokens{"a", "b"}));
}

TEST(TokenizerEdge, GramTokensOnShortAndEmptyInput) {
  EXPECT_TRUE(GramTokens("", 2).empty());
  EXPECT_TRUE(GramTokens("a", 2).empty());
  // With pre/post padding even the empty string produces grams.
  EXPECT_EQ(GramTokens("a", 2, /*pre_post_pad=*/true),
            (Tokens{"#a", "a$"}));
  EXPECT_EQ(GramTokens("", 2, /*pre_post_pad=*/true), (Tokens{"#$"}));
}

TEST(TokenizerEdge, DedupOccurrencesOnRepeatsAndEmpty) {
  EXPECT_TRUE(DedupOccurrences({}).empty());
  EXPECT_EQ(DedupOccurrences({"ba", "ba", "ba"}),
            (Tokens{"ba", "ba#1", "ba#2"}));
}

}  // namespace
}  // namespace simdb::similarity
