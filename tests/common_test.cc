#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace simdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("dataset foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "dataset foo");
  EXPECT_EQ(s.ToString(), "NotFound: dataset foo");
}

TEST(StatusTest, EveryCodeHasName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kPlanError); ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, OkStatusIsInternalError) {
  Result<int> r(Status::OK());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubler(Result<int> in) {
  SIMDB_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("x")).ok());
}

TEST(BytesTest, RoundTripAllTypes) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutU8(7);
  w.PutU32(123456);
  w.PutU64(9999999999ULL);
  w.PutI64(-42);
  w.PutDouble(3.5);
  w.PutString("hello");

  ByteReader r(buf);
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 123456u);
  EXPECT_EQ(*r.GetU64(), 9999999999ULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_EQ(*r.GetDouble(), 3.5);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BytesTest, TruncationIsCorruption) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutU32(10);
  ByteReader r(buf.substr(0, 2));
  Result<uint32_t> v = r.GetU32();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedStringDetected) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutString("abcdef");
  ByteReader r(buf.substr(0, 6));
  EXPECT_FALSE(r.GetString().ok());
}

TEST(RandomTest, Deterministic) {
  Random a(1), b(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Random rng(11);
  ZipfGenerator zipf(1000, 1.0);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t r = zipf.Next(rng);
    ASSERT_LT(r, 1000u);
    if (r < 10) ++low;
    if (r >= 500) ++high;
  }
  EXPECT_GT(low, high);  // top-10 ranks beat the entire bottom half
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  Random rng(13);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 1500);
    EXPECT_LT(c, 2500);
  }
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 100; ++i) {
    tasks.push_back([&sum, i] { sum += i; });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) tasks.push_back([&count] { ++count; });
    pool.RunAll(std::move(tasks));
  }
  EXPECT_EQ(count.load(), 80);
}

TEST(ThreadPoolTest, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  pool.RunAll({});
}

}  // namespace
}  // namespace simdb
