#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "core/query_processor.h"
#include "storage/file_util.h"

namespace simdb::core {
namespace {

using adm::Value;

/// End-to-end engine fixture: a 2-node x 2-partition simulated cluster with
/// a small review dataset resembling the paper's running example.
class CoreTest : public ::testing::Test {
 protected:
  CoreTest() {
    static int counter = 0;
    dir_ = (std::filesystem::temp_directory_path() /
            ("simdb_core_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    EngineOptions options;
    options.data_dir = dir_;
    options.topology = {2, 2};
    options.num_threads = 2;
    engine_ = std::make_unique<QueryProcessor>(options);
  }
  ~CoreTest() override { storage::RemoveAllBestEffort(dir_); }

  void LoadReviews(bool with_indexes) {
    ASSERT_TRUE(engine_
                    ->Execute("create dataset Reviews primary key id;")
                    .ok());
    struct Row {
      int64_t id;
      const char* name;
      const char* summary;
    };
    const Row rows[] = {
        {1, "james", "this movie touched my heart"},
        {2, "mary", "great product fantastic gift"},
        {3, "mario", "different than my usual but good"},
        {4, "jamie", "better ever than i expected"},
        {5, "maria", "the best car charger i ever bought"},
        {6, "marla", "great product really fantastic gift"},
        {7, "bob", "xy"},
        {8, "al", "great gift"},
    };
    for (const Row& r : rows) {
      ASSERT_TRUE(engine_
                      ->Insert("Reviews",
                               Value::MakeObject(
                                   {{"id", Value::Int64(r.id)},
                                    {"reviewerName", Value::String(r.name)},
                                    {"summary", Value::String(r.summary)}}))
                      .ok());
    }
    if (with_indexes) {
      ASSERT_TRUE(
          engine_
              ->Execute(
                  "create index nix on Reviews(reviewerName) type ngram(2);"
                  "create index smix on Reviews(summary) type keyword;")
              .ok());
    }
  }

  /// Runs a query and returns its (sorted JSON) result rows.
  std::vector<std::string> Run(const std::string& aql) {
    QueryResult result;
    Status s = engine_->Execute(aql, &result);
    EXPECT_TRUE(s.ok()) << s.ToString() << "\nquery: " << aql;
    last_ = result;
    std::vector<std::string> rows;
    for (const Value& v : result.rows) rows.push_back(v.ToJson());
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  int64_t RunCount(const std::string& aql) {
    QueryResult result;
    Status s = engine_->Execute(aql, &result);
    EXPECT_TRUE(s.ok()) << s.ToString() << "\nquery: " << aql;
    last_ = result;
    if (result.rows.size() != 1 || !result.rows[0].is_int64()) return -1;
    return result.rows[0].AsInt64();
  }

  bool RuleFired(const std::string& name) {
    for (const std::string& r : last_.fired_rules) {
      if (r == name) return true;
    }
    return false;
  }

  std::string dir_;
  std::unique_ptr<QueryProcessor> engine_;
  QueryResult last_;
};

// ---------- DDL and basic queries ----------

TEST_F(CoreTest, DdlAndScan) {
  LoadReviews(false);
  EXPECT_EQ(RunCount("count(for $t in dataset Reviews return $t)"), 8);
}

TEST_F(CoreTest, ProjectionAndFilter) {
  LoadReviews(false);
  std::vector<std::string> rows = Run(
      "for $t in dataset Reviews where $t.id = 5 return $t.reviewerName");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "\"maria\"");
}

TEST_F(CoreTest, RecordConstructionAndArithmetic) {
  LoadReviews(false);
  std::vector<std::string> rows = Run(
      "for $t in dataset Reviews where $t.id < 3 "
      "return {'i2': $t.id * 10 + 1}");
  EXPECT_EQ(rows, (std::vector<std::string>{"{\"i2\":11}", "{\"i2\":21}"}));
}

TEST_F(CoreTest, OrderByGlobal) {
  LoadReviews(false);
  QueryResult result;
  ASSERT_TRUE(engine_
                  ->Execute("for $t in dataset Reviews order by $t.id desc "
                            "return $t.id",
                            &result)
                  .ok());
  ASSERT_EQ(result.rows.size(), 8u);
  EXPECT_EQ(result.rows.front().AsInt64(), 8);
  EXPECT_EQ(result.rows.back().AsInt64(), 1);
}

TEST_F(CoreTest, GroupByWithCount) {
  LoadReviews(false);
  std::vector<std::string> rows = Run(R"(
    for $t in dataset Reviews
    for $w in word-tokens($t.summary)
    group by $g := $w with $t
    where count($t) >= 3
    return $g
  )");
  // Tokens appearing >= 3 times across all summaries.
  // "great" appears in ids 2, 6, 8 -> 3 times; so it must be present.
  EXPECT_TRUE(std::find(rows.begin(), rows.end(), "\"great\"") != rows.end());
}

// ---------- similarity selections (paper Figures 5, 7, 21) ----------

TEST_F(CoreTest, EditDistanceSelectionScan) {
  LoadReviews(false);
  std::vector<std::string> rows = Run(
      "for $t in dataset Reviews "
      "where edit-distance($t.reviewerName, 'marla') <= 1 "
      "return $t.reviewerName");
  // ed("mary","marla") = 2, so only "maria" and "marla" qualify at k=1.
  EXPECT_EQ(rows, (std::vector<std::string>{"\"maria\"", "\"marla\""}));
  EXPECT_FALSE(RuleFired("introduce-similarity-select-index"));
}

TEST_F(CoreTest, EditDistanceSelectionIndexMatchesScan) {
  LoadReviews(true);
  std::vector<std::string> rows = Run(
      "for $t in dataset Reviews "
      "where edit-distance($t.reviewerName, 'marla') <= 1 "
      "return $t.reviewerName");
  EXPECT_TRUE(RuleFired("introduce-similarity-select-index"));
  EXPECT_EQ(rows, (std::vector<std::string>{"\"maria\"", "\"marla\""}));
}

TEST_F(CoreTest, EditDistanceCornerCaseStaysOnScan) {
  LoadReviews(true);
  // T = |G("marla")| - 2k = 4 - 6 <= 0: the optimizer must keep the scan.
  std::vector<std::string> rows = Run(
      "for $t in dataset Reviews "
      "where edit-distance($t.reviewerName, 'marla') <= 3 "
      "return $t.reviewerName");
  EXPECT_FALSE(RuleFired("introduce-similarity-select-index"));
  EXPECT_GE(rows.size(), 4u);  // also matches "maria","marla","mary","mario"
}

TEST_F(CoreTest, JaccardSelectionIndexMatchesScan) {
  std::string query =
      "for $t in dataset Reviews "
      "where similarity-jaccard(word-tokens($t.summary), "
      "word-tokens('great product fantastic gift')) >= 0.5 "
      "return $t.id";
  LoadReviews(true);
  std::vector<std::string> with_index = Run(query);
  EXPECT_TRUE(RuleFired("introduce-similarity-select-index"));
  engine_->opt_context().enable_index_select = false;
  std::vector<std::string> without_index = Run(query);
  EXPECT_FALSE(RuleFired("introduce-similarity-select-index"));
  EXPECT_EQ(with_index, without_index);
  // {great, gift} vs the query tokens gives 2/4 = 0.5 for id 8 too.
  EXPECT_EQ(with_index, (std::vector<std::string>{"2", "6", "8"}));
}

TEST_F(CoreTest, SimilarityOperatorSugarSelection) {
  LoadReviews(true);
  std::vector<std::string> rows = Run(
      "set simfunction 'edit-distance'; set simthreshold '1'; "
      "for $t in dataset Reviews where $t.reviewerName ~= 'marla' "
      "return $t.reviewerName");
  EXPECT_TRUE(RuleFired("similarity-sugar"));
  EXPECT_EQ(rows.size(), 2u);  // maria, marla
}

TEST_F(CoreTest, ContainsSelectionUsesNgramIndex) {
  LoadReviews(true);
  std::vector<std::string> rows = Run(
      "for $t in dataset Reviews where contains($t.reviewerName, 'ari') "
      "return $t.reviewerName");
  EXPECT_TRUE(RuleFired("introduce-similarity-select-index"));
  EXPECT_EQ(rows, (std::vector<std::string>{"\"maria\"", "\"mario\""}));
}

// ---------- similarity joins (paper Figures 8, 10, 14, 19) ----------

std::string JaccardJoinQuery(double threshold) {
  return "count(for $o in dataset Reviews for $i in dataset Reviews "
         "where similarity-jaccard(word-tokens($o.summary), "
         "word-tokens($i.summary)) >= " +
         std::to_string(threshold) +
         " and $o.id < $i.id return {'o': $o.id, 'i': $i.id})";
}

TEST_F(CoreTest, JaccardJoinAllPlansAgree) {
  LoadReviews(true);
  // Index-nested-loop plan.
  int64_t with_index = RunCount(JaccardJoinQuery(0.5));
  EXPECT_TRUE(RuleFired("introduce-similarity-index-join"));
  // Three-stage plan.
  engine_->opt_context().enable_index_join = false;
  int64_t three_stage = RunCount(JaccardJoinQuery(0.5));
  EXPECT_TRUE(RuleFired("three-stage-similarity-join"));
  // Plain nested-loop plan.
  engine_->opt_context().enable_three_stage_join = false;
  int64_t nested_loop = RunCount(JaccardJoinQuery(0.5));
  EXPECT_FALSE(RuleFired("three-stage-similarity-join"));
  EXPECT_EQ(nested_loop, with_index);
  EXPECT_EQ(nested_loop, three_stage);
  // Pairs (2,6) and (2,8)/(6,8)? verify ground truth by hand: at least (2,6).
  EXPECT_GE(nested_loop, 1);
}

TEST_F(CoreTest, JaccardJoinThresholdSweepAgrees) {
  LoadReviews(true);
  for (double threshold : {0.2, 0.5, 0.8}) {
    int64_t indexed = RunCount(JaccardJoinQuery(threshold));
    engine_->opt_context().enable_index_join = false;
    int64_t three_stage = RunCount(JaccardJoinQuery(threshold));
    engine_->opt_context().enable_three_stage_join = false;
    int64_t nested_loop = RunCount(JaccardJoinQuery(threshold));
    EXPECT_EQ(indexed, nested_loop) << "threshold " << threshold;
    EXPECT_EQ(three_stage, nested_loop) << "threshold " << threshold;
    engine_->opt_context().enable_index_join = true;
    engine_->opt_context().enable_three_stage_join = true;
  }
}

std::string EdJoinQuery(int k) {
  return "count(for $o in dataset Reviews for $i in dataset Reviews "
         "where edit-distance($o.reviewerName, $i.reviewerName) <= " +
         std::to_string(k) +
         " and $o.id < $i.id return {'o': $o.id, 'i': $i.id})";
}

TEST_F(CoreTest, EditDistanceJoinIndexMatchesNl) {
  LoadReviews(true);
  // The dataset contains short names ("al", "xy"-adjacent "bob") that hit
  // the runtime corner case (T <= 0), exercising the union plan (Fig. 14).
  for (int k : {1, 2}) {
    int64_t indexed = RunCount(EdJoinQuery(k));
    EXPECT_TRUE(RuleFired("introduce-similarity-index-join"));
    engine_->opt_context().enable_index_join = false;
    int64_t nested_loop = RunCount(EdJoinQuery(k));
    engine_->opt_context().enable_index_join = true;
    EXPECT_EQ(indexed, nested_loop) << "k=" << k;
  }
}

TEST_F(CoreTest, SurrogateAblationSameResults) {
  LoadReviews(true);
  int64_t with_surrogate = RunCount(JaccardJoinQuery(0.5));
  engine_->opt_context().enable_surrogate_join = false;
  int64_t without_surrogate = RunCount(JaccardJoinQuery(0.5));
  EXPECT_EQ(with_surrogate, without_surrogate);
}

TEST_F(CoreTest, SubplanReuseAblationSameResults) {
  LoadReviews(true);
  engine_->opt_context().enable_index_join = false;
  int64_t shared = RunCount(JaccardJoinQuery(0.5));
  engine_->opt_context().enable_subplan_reuse = false;
  int64_t cloned = RunCount(JaccardJoinQuery(0.5));
  EXPECT_EQ(shared, cloned);
}

TEST_F(CoreTest, SimilarityOperatorSugarJoin) {
  LoadReviews(true);
  int64_t count = RunCount(
      "set simfunction 'jaccard'; set simthreshold '0.5'; "
      "count(for $o in dataset Reviews for $i in dataset Reviews "
      "where word-tokens($o.summary) ~= word-tokens($i.summary) "
      "and $o.id < $i.id return {'o': $o.id})");
  EXPECT_EQ(count, RunCount(JaccardJoinQuery(0.5)));
}

// ---------- multi-way joins (paper Figures 18, 26) ----------

TEST_F(CoreTest, MultiWaySimilarityJoin) {
  LoadReviews(true);
  std::string query =
      "count(for $o in dataset Reviews for $i in dataset Reviews "
      "where similarity-jaccard(word-tokens($o.summary), "
      "word-tokens($i.summary)) >= 0.3 "
      "and edit-distance($o.reviewerName, $i.reviewerName) <= 2 "
      "and $o.id < $i.id return {'o': $o.id, 'i': $i.id})";
  int64_t optimized = RunCount(query);
  engine_->opt_context().enable_index_join = false;
  engine_->opt_context().enable_three_stage_join = false;
  int64_t nested_loop = RunCount(query);
  EXPECT_EQ(optimized, nested_loop);
}

TEST_F(CoreTest, ThreeDatasetPipeline) {
  LoadReviews(true);
  ASSERT_TRUE(engine_->Execute("create dataset Probe primary key id;").ok());
  ASSERT_TRUE(engine_
                  ->Insert("Probe", Value::MakeObject(
                                        {{"id", Value::Int64(1)},
                                         {"summary", Value::String(
                                              "great product fantastic "
                                              "gift")}}))
                  .ok());
  int64_t count = RunCount(
      "count(for $p in dataset Probe for $i in dataset Reviews "
      "where similarity-jaccard(word-tokens($p.summary), "
      "word-tokens($i.summary)) >= 0.5 return {'i': $i.id})");
  EXPECT_EQ(count, 3);  // reviews 2, 6 and 8
}

// ---------- UDFs ----------

TEST_F(CoreTest, UserDefinedAqlFunction) {
  LoadReviews(false);
  int64_t count = RunCount(
      "create function sim-overlap($x, $y) "
      "{ similarity-jaccard(word-tokens($x), word-tokens($y)) }; "
      "count(for $t in dataset Reviews "
      "where sim-overlap($t.summary, 'great product fantastic gift') >= 0.5 "
      "return $t)");
  EXPECT_EQ(count, 3);
}

TEST_F(CoreTest, RegisteredCppUdfViaSugar) {
  LoadReviews(false);
  engine_->RegisterSimilarityUdf(
      {.name = "similarity-first-char",
       .sense = similarity::ThresholdSense::kSimilarityAtLeast,
       .eval =
           [](const Value& a, const Value& b) -> Result<Value> {
             if (!a.is_string() || !b.is_string()) {
               return Status::TypeError("expected strings");
             }
             bool same = !a.AsString().empty() && !b.AsString().empty() &&
                         a.AsString()[0] == b.AsString()[0];
             return Value::Double(same ? 1.0 : 0.0);
           },
       .check = nullptr});
  int64_t count = RunCount(
      "set simfunction 'similarity-first-char'; set simthreshold '1.0'; "
      "count(for $t in dataset Reviews where $t.reviewerName ~= 'mike' "
      "return $t)");
  EXPECT_EQ(count, 4);  // mary, mario, maria, marla
}

// ---------- explain / plan shapes ----------

TEST_F(CoreTest, ExplainShowsIndexPlan) {
  LoadReviews(true);
  auto plan = engine_->Explain(
      "for $t in dataset Reviews "
      "where edit-distance($t.reviewerName, 'marla') <= 1 return $t");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("INDEX-SEARCH"), std::string::npos);
  EXPECT_NE(plan->find("PRIMARY-LOOKUP"), std::string::npos);
}

TEST_F(CoreTest, ExplainShowsThreeStagePieces) {
  LoadReviews(false);  // no index -> three-stage
  auto plan = engine_->Explain(JaccardJoinQuery(0.5));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("GROUP-BY"), std::string::npos);
  EXPECT_NE(plan->find("RANK"), std::string::npos);
  EXPECT_NE(plan->find("prefix-len-jaccard"), std::string::npos);
}

TEST_F(CoreTest, CompileStatsPopulated) {
  LoadReviews(false);
  QueryResult result;
  ASSERT_TRUE(engine_->Execute(JaccardJoinQuery(0.5), &result).ok());
  EXPECT_GT(result.compile.total_seconds, 0.0);
  EXPECT_GT(result.compile.aqlplus_seconds, 0.0);  // three-stage fired
  EXPECT_GT(result.exec.wall_seconds, 0.0);
}

// ---------- error handling ----------

TEST_F(CoreTest, ErrorsSurfaceCleanly) {
  LoadReviews(false);
  QueryResult result;
  EXPECT_FALSE(engine_->Execute("for $t in dataset Nope return $t", &result)
                   .ok());
  EXPECT_FALSE(engine_->Execute("this is not aql", &result).ok());
  EXPECT_FALSE(
      engine_->Execute("create dataset Reviews primary key id", &result).ok());
}

}  // namespace
}  // namespace simdb::core
