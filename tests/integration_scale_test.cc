// Integration tests at a few-thousand-record scale using the calibrated
// synthetic datasets: the full paper query workload (Figures 21/23/26) runs
// through every optimizer path and the answers of rival plans must agree.
// These are the same queries the benchmarks time, run here as correctness
// checks under ctest.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/logging.h"
#include "core/query_processor.h"
#include "datagen/textgen.h"
#include "storage/file_util.h"

namespace simdb::core {
namespace {

class IntegrationScaleTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRecords = 2500;

  IntegrationScaleTest() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("simdb_integ_" + std::to_string(::getpid())))
               .string();
    storage::RemoveAllBestEffort(dir_);
    EngineOptions options;
    options.data_dir = dir_;
    options.topology = {4, 2};  // the paper's 2-partitions-per-node layout
    options.num_threads = 2;
    engine_ = std::make_unique<QueryProcessor>(options);

    Status s = engine_->Execute(
        "create dataset AmazonReview primary key id;"
        "create index smix on AmazonReview(summary) type keyword;"
        "create index nix on AmazonReview(reviewerName) type ngram(2);");
    SIMDB_CHECK(s.ok()) << s.ToString();
    datagen::TextDatasetGenerator gen(datagen::AmazonProfile(), 2026);
    for (int64_t i = 0; i < kRecords; ++i) {
      SIMDB_CHECK(engine_->Insert("AmazonReview", gen.NextRecord(i)).ok());
    }
    gen_ = std::make_unique<datagen::TextDatasetGenerator>(std::move(gen));
  }
  ~IntegrationScaleTest() override { storage::RemoveAllBestEffort(dir_); }

  int64_t RunCount(const std::string& aql) {
    QueryResult result;
    Status s = engine_->Execute(aql, &result);
    EXPECT_TRUE(s.ok()) << s.ToString() << "\nquery: " << aql;
    if (!s.ok() || result.rows.size() != 1 || !result.rows[0].is_int64()) {
      return -1;
    }
    return result.rows[0].AsInt64();
  }

  std::string dir_;
  std::unique_ptr<QueryProcessor> engine_;
  std::unique_ptr<datagen::TextDatasetGenerator> gen_;
};

TEST_F(IntegrationScaleTest, JaccardSelectionSweep) {
  datagen::WorkloadSampler sampler(gen_->texts(), 11);
  for (double threshold : {0.2, 0.5, 0.8}) {
    auto value = sampler.SampleWithMinWords(3);
    ASSERT_TRUE(value.ok());
    std::string query =
        "count(for $t in dataset AmazonReview where "
        "similarity-jaccard(word-tokens($t.summary), word-tokens('" + *value +
        "')) >= " + std::to_string(threshold) + " return $t)";
    int64_t indexed = RunCount(query);
    engine_->opt_context().enable_index_select = false;
    int64_t scanned = RunCount(query);
    engine_->opt_context().enable_index_select = true;
    EXPECT_EQ(indexed, scanned) << "threshold " << threshold;
    EXPECT_GE(indexed, 1);  // the query value itself is in the data
  }
}

TEST_F(IntegrationScaleTest, EditDistanceSelectionSweep) {
  datagen::WorkloadSampler sampler(gen_->names(), 13);
  for (int k : {1, 2, 3}) {
    auto value = sampler.SampleWithMinChars(8);
    ASSERT_TRUE(value.ok());
    std::string query =
        "count(for $t in dataset AmazonReview where "
        "edit-distance($t.reviewerName, '" + *value + "') <= " +
        std::to_string(k) + " return $t)";
    int64_t indexed = RunCount(query);
    engine_->opt_context().enable_index_select = false;
    int64_t scanned = RunCount(query);
    engine_->opt_context().enable_index_select = true;
    EXPECT_EQ(indexed, scanned) << "k " << k;
    EXPECT_GE(indexed, 1);
  }
}

TEST_F(IntegrationScaleTest, JoinPlansAgreeAtScale) {
  std::string query =
      "count(for $o in dataset AmazonReview for $i in dataset AmazonReview "
      "where similarity-jaccard(word-tokens($o.summary), "
      "word-tokens($i.summary)) >= 0.8 and $o.id < 40 and $o.id < $i.id "
      "return {'o': $o.id})";
  auto& opt = engine_->opt_context();
  int64_t indexed = RunCount(query);
  opt.enable_index_join = false;
  int64_t three_stage = RunCount(query);
  opt.enable_three_stage_join = false;
  int64_t nested = RunCount(query);
  opt.enable_index_join = true;
  opt.enable_three_stage_join = true;
  EXPECT_EQ(indexed, nested);
  EXPECT_EQ(three_stage, nested);
  EXPECT_GT(nested, 0);  // near-duplicates guarantee matches
}

TEST_F(IntegrationScaleTest, EditDistanceJoinWithCornersAtScale) {
  // Short names in the pool hit the runtime corner case for k=3.
  std::string query =
      "count(for $o in dataset AmazonReview for $i in dataset AmazonReview "
      "where edit-distance($o.reviewerName, $i.reviewerName) <= 3 "
      "and $o.id < 15 and $o.id < $i.id return {'o': $o.id})";
  int64_t indexed = RunCount(query);
  engine_->opt_context().enable_index_join = false;
  int64_t nested = RunCount(query);
  engine_->opt_context().enable_index_join = true;
  EXPECT_EQ(indexed, nested);
  EXPECT_GT(nested, 0);
}

TEST_F(IntegrationScaleTest, MultiWayOrderingsAgree) {
  std::string jac =
      "similarity-jaccard(word-tokens($o.summary), "
      "word-tokens($i.summary)) >= 0.8";
  std::string ed = "edit-distance($o.reviewerName, $i.reviewerName) <= 1";
  auto query = [&](const std::string& a, const std::string& b) {
    return "count(for $o in dataset AmazonReview "
           "for $i in dataset AmazonReview "
           "where $o.id < 30 and " + a + " and " + b +
           " and $o.id < $i.id return {'o': $o.id})";
  };
  int64_t jac_first = RunCount(query(jac, ed));
  int64_t ed_first = RunCount(query(ed, jac));
  engine_->opt_context().enable_index_join = false;
  int64_t no_index = RunCount(query(jac, ed));
  engine_->opt_context().enable_index_join = true;
  EXPECT_EQ(jac_first, ed_first);
  EXPECT_EQ(jac_first, no_index);
}

TEST_F(IntegrationScaleTest, TOccurrenceAlgorithmsAgreeAtScale) {
  datagen::WorkloadSampler sampler(gen_->texts(), 17);
  auto value = sampler.SampleWithMinWords(3);
  ASSERT_TRUE(value.ok());
  std::string query =
      "count(for $t in dataset AmazonReview where "
      "similarity-jaccard(word-tokens($t.summary), word-tokens('" + *value +
      "')) >= 0.5 return $t)";
  // Second engine over the same storage dir is not safe (LSM handles are
  // exclusive per instance); instead compare through a fresh engine with the
  // heap-merge algorithm over freshly generated identical data.
  std::string dir2 = dir_ + "_heap";
  storage::RemoveAllBestEffort(dir2);
  EngineOptions options;
  options.data_dir = dir2;
  options.topology = {4, 2};
  options.num_threads = 2;
  options.t_occurrence_algorithm = storage::TOccurrenceAlgorithm::kHeapMerge;
  QueryProcessor heap_engine(options);
  ASSERT_TRUE(heap_engine
                  .Execute("create dataset AmazonReview primary key id;"
                           "create index smix on AmazonReview(summary) "
                           "type keyword;")
                  .ok());
  datagen::TextDatasetGenerator gen(datagen::AmazonProfile(), 2026);
  for (int64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(heap_engine.Insert("AmazonReview", gen.NextRecord(i)).ok());
  }
  QueryResult heap_result;
  ASSERT_TRUE(heap_engine.Execute(query, &heap_result).ok());
  EXPECT_EQ(RunCount(query), heap_result.rows[0].AsInt64());
  storage::RemoveAllBestEffort(dir2);
}

}  // namespace
}  // namespace simdb::core
