#include <gtest/gtest.h>

#include "algebricks/jobgen.h"
#include "algebricks/lexpr.h"
#include "algebricks/lop.h"
#include "algebricks/rules.h"

namespace simdb::algebricks {
namespace {

using adm::Value;

// ---------- LExpr ----------

TEST(LExprTest, ToStringForms) {
  LExprPtr e = LExpr::CallF(
      "ge", {LExpr::CallF("similarity-jaccard",
                          {LExpr::Field(LExpr::Var("t"), "summary"),
                           LExpr::Lit(Value::String("x"))}),
             LExpr::Lit(Value::Double(0.5))});
  EXPECT_EQ(e->ToString(),
            "ge(similarity-jaccard($t.summary, \"x\"), 0.5)");
}

TEST(LExprTest, CollectAndUsesVars) {
  LExprPtr e = LExpr::CallF("eq", {LExpr::Field(LExpr::Var("a"), "x"),
                                   LExpr::Var("b")});
  std::set<std::string> vars;
  e->CollectVars(&vars);
  EXPECT_EQ(vars, (std::set<std::string>{"a", "b"}));
  EXPECT_TRUE(e->UsesOnly({"a", "b", "c"}));
  EXPECT_FALSE(e->UsesOnly({"a"}));
  EXPECT_TRUE(e->UsesAny({"b"}));
  EXPECT_FALSE(e->UsesAny({"z"}));
}

TEST(LExprTest, SplitAndCombineConjuncts) {
  LExprPtr a = LExpr::Var("a"), b = LExpr::Var("b"), c = LExpr::Var("c");
  LExprPtr cond = LExpr::CallF("and", {LExpr::CallF("and", {a, b}), c});
  std::vector<LExprPtr> conjuncts = SplitConjuncts(cond);
  EXPECT_EQ(conjuncts.size(), 3u);
  LExprPtr combined = CombineConjuncts(conjuncts);
  EXPECT_EQ(SplitConjuncts(combined).size(), 3u);
  // Empty conjunct list is the TRUE literal.
  LExprPtr empty = CombineConjuncts({});
  EXPECT_EQ(empty->kind, LExpr::Kind::kLiteral);
  EXPECT_TRUE(empty->literal.AsBoolean());
}

TEST(LExprTest, SubstituteVars) {
  LExprPtr e = LExpr::CallF("eq", {LExpr::Var("a"), LExpr::Var("b")});
  LExprPtr out = SubstituteVars(e, {{"a", LExpr::Lit(Value::Int64(1))}});
  EXPECT_EQ(out->children[0]->kind, LExpr::Kind::kLiteral);
  EXPECT_EQ(out->children[1]->kind, LExpr::Kind::kVar);
}

TEST(LExprTest, EvaluateConstant) {
  LExprPtr e = LExpr::CallF(
      "add", {LExpr::Lit(Value::Int64(2)), LExpr::Lit(Value::Int64(3))});
  EXPECT_EQ((*EvaluateConstant(e)).AsInt64(), 5);
  EXPECT_FALSE(EvaluateConstant(LExpr::Var("free")).ok());
}

// ---------- LOp ----------

TEST(LOpTest, OutputVarsPerKind) {
  LOpPtr scan = MakeDataScan("X", "t");
  EXPECT_EQ(*scan->OutputVars(), (std::vector<std::string>{"t"}));

  LOpPtr assign = MakeAssign(scan, {{"a", LExpr::Lit(Value::Int64(1))}});
  EXPECT_EQ(*assign->OutputVars(), (std::vector<std::string>{"t", "a"}));

  LOpPtr scan2 = MakeDataScan("Y", "u");
  LOpPtr join = MakeJoin(assign, scan2, LExpr::Lit(Value::Boolean(true)));
  EXPECT_EQ(*join->OutputVars(), (std::vector<std::string>{"t", "a", "u"}));

  LOpPtr group = MakeGroupBy(join, {{"k", LExpr::Var("a")}},
                             {{LAgg::Kind::kCount, nullptr, "n"}});
  EXPECT_EQ(*group->OutputVars(), (std::vector<std::string>{"k", "n"}));

  LOpPtr project = MakeProject(group, {"n"});
  EXPECT_EQ(*project->OutputVars(), (std::vector<std::string>{"n"}));
}

TEST(LOpTest, CloneTreeIsDeep) {
  LOpPtr scan = MakeDataScan("X", "t");
  LOpPtr select = MakeSelect(scan, LExpr::Lit(Value::Boolean(true)));
  LOpPtr clone = CloneTree(select);
  EXPECT_NE(clone.get(), select.get());
  EXPECT_NE(clone->inputs[0].get(), scan.get());
  EXPECT_EQ(clone->inputs[0]->dataset, "X");
}

// ---------- rewrite rules ----------

OptContext Ctx() {
  OptContext ctx;
  return ctx;
}

TEST(RulesTest, PushSelectIntoJoin) {
  LOpPtr join = MakeJoin(MakeDataScan("X", "a"), MakeDataScan("Y", "b"),
                         LExpr::Lit(Value::Boolean(true)));
  LOpPtr root = MakeSelect(
      join, LExpr::CallF("eq", {LExpr::Field(LExpr::Var("a"), "k"),
                                LExpr::Field(LExpr::Var("b"), "k")}));
  OptContext ctx = Ctx();
  RuleSet set{"s", {MakePushSelectIntoJoinRule()}, 4};
  ASSERT_TRUE(*ApplyRuleSet(root, set, ctx));
  EXPECT_EQ(root->kind, LOpKind::kJoin);
  EXPECT_EQ(root->expr->name, "eq");
}

TEST(RulesTest, PushSelectBelowJoinSplitsSingleSideConjuncts) {
  LExprPtr left_only = LExpr::CallF(
      "gt", {LExpr::Field(LExpr::Var("a"), "id"), LExpr::Lit(Value::Int64(3))});
  LExprPtr both = LExpr::CallF("eq", {LExpr::Field(LExpr::Var("a"), "k"),
                                      LExpr::Field(LExpr::Var("b"), "k")});
  LOpPtr root = MakeJoin(MakeDataScan("X", "a"), MakeDataScan("Y", "b"),
                         LExpr::CallF("and", {left_only, both}));
  OptContext ctx = Ctx();
  RuleSet set{"s", {MakePushSelectBelowJoinRule()}, 4};
  ASSERT_TRUE(*ApplyRuleSet(root, set, ctx));
  EXPECT_EQ(root->inputs[0]->kind, LOpKind::kSelect);  // pushed to the left
  EXPECT_EQ(root->inputs[1]->kind, LOpKind::kDataScan);
  EXPECT_EQ(SplitConjuncts(root->expr).size(), 1u);  // only the equi stays
}

TEST(RulesTest, RemoveTrivialSelect) {
  LOpPtr root = MakeSelect(MakeDataScan("X", "a"),
                           LExpr::Lit(Value::Boolean(true)));
  OptContext ctx = Ctx();
  RuleSet set{"s", {MakeRemoveTrivialSelectRule()}, 4};
  ASSERT_TRUE(*ApplyRuleSet(root, set, ctx));
  EXPECT_EQ(root->kind, LOpKind::kDataScan);
}

TEST(RulesTest, CountListifyRewrite) {
  // group by collects $t but every use is count($t) -> becomes a count agg.
  LOpPtr scan = MakeDataScan("X", "t");
  LOpPtr group = MakeGroupBy(
      scan, {{"k", LExpr::Field(LExpr::Var("t"), "f")}},
      {{LAgg::Kind::kListify, LExpr::Var("t"), "collected"}});
  LOpPtr root = MakeSelect(
      group, LExpr::CallF("gt", {LExpr::CallF("count", {LExpr::Var("collected")}),
                                 LExpr::Lit(Value::Int64(2))}));
  OptContext ctx = Ctx();
  ASSERT_TRUE(*ApplyCountListifyRewrite(root, ctx));
  EXPECT_EQ(group->group_aggs[0].kind, LAgg::Kind::kCount);
  // The count() call collapsed to the bare variable.
  EXPECT_EQ(root->expr->children[0]->kind, LExpr::Kind::kVar);
}

TEST(RulesTest, CountListifyKeepsListWhenUsedDirectly) {
  LOpPtr scan = MakeDataScan("X", "t");
  LOpPtr group = MakeGroupBy(
      scan, {{"k", LExpr::Field(LExpr::Var("t"), "f")}},
      {{LAgg::Kind::kListify, LExpr::Var("t"), "collected"}});
  // One use is the raw list -> rewrite must NOT fire.
  LOpPtr root = MakeAssign(
      group, {{"out", LExpr::CallF("sort-list", {LExpr::Var("collected")})}});
  OptContext ctx = Ctx();
  EXPECT_FALSE(*ApplyCountListifyRewrite(root, ctx));
  EXPECT_EQ(group->group_aggs[0].kind, LAgg::Kind::kListify);
}

TEST(RulesTest, RuleSetStopsAtFixpoint) {
  LOpPtr root = MakeSelect(MakeDataScan("X", "a"),
                           LExpr::Lit(Value::Boolean(true)));
  OptContext ctx = Ctx();
  RuleSet set{"s", {MakeRemoveTrivialSelectRule()}, 8};
  ASSERT_TRUE(*ApplyRuleSet(root, set, ctx));
  EXPECT_FALSE(*ApplyRuleSet(root, set, ctx));  // nothing left to do
  EXPECT_EQ(ctx.fired_rules.size(), 1u);
}

// ---------- job generation shapes ----------

TEST(JobGenTest, ScanSelectProject) {
  LOpPtr plan = MakeProject(
      MakeSelect(MakeDataScan("X", "t"),
                 LExpr::CallF("eq", {LExpr::Field(LExpr::Var("t"), "id"),
                                     LExpr::Lit(Value::Int64(1))})),
      {"t"});
  JobGenerator gen;
  hyracks::Job job;
  ASSERT_TRUE(gen.Generate(plan, &job).ok());
  std::string rendered = job.ToString();
  EXPECT_NE(rendered.find("DATA-SCAN"), std::string::npos);
  EXPECT_NE(rendered.find("SELECT"), std::string::npos);
  EXPECT_NE(rendered.find("GATHER"), std::string::npos);
}

TEST(JobGenTest, EquiJoinUsesHashExchanges) {
  LOpPtr join = MakeJoin(
      MakeDataScan("X", "a"), MakeDataScan("Y", "b"),
      LExpr::CallF("eq", {LExpr::Field(LExpr::Var("a"), "k"),
                          LExpr::Field(LExpr::Var("b"), "k")}));
  JobGenerator gen;
  hyracks::Job job;
  ASSERT_TRUE(gen.Generate(join, &job).ok());
  std::string rendered = job.ToString();
  EXPECT_NE(rendered.find("HASH-EXCHANGE"), std::string::npos);
  EXPECT_NE(rendered.find("HASH-JOIN"), std::string::npos);
  EXPECT_EQ(rendered.find("NL-JOIN"), std::string::npos);
}

TEST(JobGenTest, ThetaJoinFallsBackToBroadcastNl) {
  LOpPtr join = MakeJoin(
      MakeDataScan("X", "a"), MakeDataScan("Y", "b"),
      LExpr::CallF("lt", {LExpr::Field(LExpr::Var("a"), "k"),
                          LExpr::Field(LExpr::Var("b"), "k")}));
  JobGenerator gen;
  hyracks::Job job;
  ASSERT_TRUE(gen.Generate(join, &job).ok());
  std::string rendered = job.ToString();
  EXPECT_NE(rendered.find("BROADCAST-EXCHANGE"), std::string::npos);
  EXPECT_NE(rendered.find("NL-JOIN"), std::string::npos);
}

TEST(JobGenTest, BroadcastHintHonored) {
  auto eq = std::make_shared<LExpr>();
  eq->kind = LExpr::Kind::kCall;
  eq->name = "eq";
  eq->children = {LExpr::Field(LExpr::Var("a"), "k"),
                  LExpr::Field(LExpr::Var("b"), "k")};
  eq->bcast_hint = true;
  LOpPtr join = MakeJoin(MakeDataScan("X", "a"), MakeDataScan("Y", "b"),
                         LExprPtr(eq));
  JobGenerator gen;
  hyracks::Job job;
  ASSERT_TRUE(gen.Generate(join, &job).ok());
  std::string rendered = job.ToString();
  EXPECT_NE(rendered.find("BROADCAST-EXCHANGE"), std::string::npos);
  EXPECT_NE(rendered.find("HASH-JOIN"), std::string::npos);
}

TEST(JobGenTest, SharedNodeCompiledOnce) {
  LOpPtr scan = MakeDataScan("X", "a");
  // The same scan feeds both sides of a join (replicate pattern).
  LOpPtr assign = MakeAssign(scan, {{"id", LExpr::Field(LExpr::Var("a"), "id")}});
  LOpPtr join = MakeJoin(assign, assign, LExpr::Lit(Value::Boolean(true)));
  JobGenerator gen;
  hyracks::Job job;
  ASSERT_TRUE(gen.Generate(join, &job).ok());
  int scans = 0;
  for (const auto& node : job.nodes()) {
    if (node.op->name().rfind("DATA-SCAN", 0) == 0) ++scans;
  }
  EXPECT_EQ(scans, 1);  // compiled once, consumed twice
}

TEST(JobGenTest, UnboundVariableIsPlanError) {
  LOpPtr plan = MakeSelect(MakeDataScan("X", "t"),
                           LExpr::CallF("eq", {LExpr::Var("nope"),
                                               LExpr::Lit(Value::Int64(1))}));
  JobGenerator gen;
  hyracks::Job job;
  Status s = gen.Generate(plan, &job);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPlanError);
}

TEST(JobGenTest, ProjectOfUnboundVariableFails) {
  LOpPtr plan = MakeProject(MakeDataScan("X", "t"), {"ghost"});
  JobGenerator gen;
  hyracks::Job job;
  EXPECT_FALSE(gen.Generate(plan, &job).ok());
}

}  // namespace
}  // namespace simdb::algebricks
