#include <gtest/gtest.h>

#include <set>

#include "cluster/cost_model.h"
#include "datagen/textgen.h"
#include "similarity/edit_distance.h"
#include "similarity/jaccard.h"
#include "similarity/tokenizer.h"

namespace simdb::datagen {
namespace {

TEST(TextGenTest, Deterministic) {
  TextDatasetGenerator a(AmazonProfile(), 1), b(AmazonProfile(), 1);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextRecord(i).ToJson(), b.NextRecord(i).ToJson());
  }
}

TEST(TextGenTest, RecordShape) {
  TextDatasetGenerator gen(AmazonProfile(), 2);
  adm::Value record = gen.NextRecord(7);
  EXPECT_EQ(record.GetField("id").AsInt64(), 7);
  EXPECT_TRUE(record.GetField("reviewerName").is_string());
  EXPECT_TRUE(record.GetField("summary").is_string());
}

TEST(TextGenTest, WordsAreUniquePerRank) {
  TextDatasetGenerator gen(AmazonProfile(), 3);
  std::set<std::string> words;
  for (uint64_t r = 0; r < 2000; ++r) words.insert(gen.Word(r));
  EXPECT_EQ(words.size(), 2000u);
}

TEST(TextGenTest, LengthDistributionRespectsBounds) {
  TextProfile profile = AmazonProfile();
  TextDatasetGenerator gen(profile, 4);
  double total_words = 0;
  int n = 2000;
  for (int64_t i = 0; i < n; ++i) {
    adm::Value rec = gen.NextRecord(i);
    auto words = similarity::WordTokens(rec.GetField("summary").AsString());
    EXPECT_GE(static_cast<int>(words.size()), profile.min_words);
    EXPECT_LE(static_cast<int>(words.size()), profile.max_words);
    total_words += static_cast<double>(words.size());
  }
  double avg = total_words / n;
  EXPECT_GT(avg, profile.avg_words * 0.4);
  EXPECT_LT(avg, profile.avg_words * 2.0);
}

TEST(TextGenTest, ZipfSkewProducesFrequentTokens) {
  TextDatasetGenerator gen(AmazonProfile(), 5);
  std::map<std::string, int> counts;
  for (int64_t i = 0; i < 3000; ++i) {
    adm::Value rec = gen.NextRecord(i);
    for (const std::string& w :
         similarity::WordTokens(rec.GetField("summary").AsString())) {
      ++counts[w];
    }
  }
  int max_count = 0, total = 0;
  for (const auto& [w, c] : counts) {
    max_count = std::max(max_count, c);
    total += c;
  }
  // The most frequent token should dominate (Zipf), but not be everything.
  EXPECT_GT(max_count, total / 50);
  EXPECT_LT(max_count, total / 2);
}

TEST(TextGenTest, NearDuplicatesExistForJoins) {
  TextProfile profile = AmazonProfile();
  profile.near_duplicate_rate = 0.3;
  TextDatasetGenerator gen(profile, 6);
  for (int64_t i = 0; i < 2000; ++i) gen.NextRecord(i);
  // Count record pairs with high word-level similarity among a sample.
  const auto& texts = gen.texts();
  int near = 0;
  for (size_t i = 0; i < 200; ++i) {
    auto a = similarity::WordTokens(texts[i]);
    std::sort(a.begin(), a.end());
    for (size_t j = i + 1; j < 400; ++j) {
      auto b = similarity::WordTokens(texts[j]);
      std::sort(b.begin(), b.end());
      if (similarity::JaccardCheckSorted(a, b, 0.8) >= 0) ++near;
    }
  }
  EXPECT_GT(near, 0);
}

TEST(TextGenTest, NameTyposKeepEditDistanceSmall) {
  TextProfile profile = AmazonProfile();
  profile.name_typo_rate = 1.0;  // always perturb once seeded
  TextDatasetGenerator gen(profile, 7);
  gen.NextRecord(0);
  int close = 0;
  for (int64_t i = 1; i < 300; ++i) {
    adm::Value rec = gen.NextRecord(i);
    const std::string& name = rec.GetField("reviewerName").AsString();
    for (const std::string& prev : gen.names()) {
      if (&prev == &gen.names().back()) break;
      int d = similarity::EditDistanceCheck(name, prev, 2);
      if (d >= 0 && d > 0) {
        ++close;
        break;
      }
    }
  }
  EXPECT_GT(close, 50);  // plenty of near-duplicate names
}

TEST(TextGenTest, ProfilesDiffer) {
  EXPECT_EQ(AmazonProfile().text_field, "summary");
  EXPECT_EQ(RedditProfile().text_field, "title");
  EXPECT_EQ(TwitterProfile().text_field, "text");
  EXPECT_GT(RedditProfile().avg_words, AmazonProfile().avg_words);
}

TEST(WorkloadSamplerTest, RespectsConstraints) {
  TextDatasetGenerator gen(AmazonProfile(), 8);
  for (int64_t i = 0; i < 500; ++i) gen.NextRecord(i);
  WorkloadSampler texts(gen.texts());
  for (int i = 0; i < 20; ++i) {
    auto v = texts.SampleWithMinWords(3);
    ASSERT_TRUE(v.ok());
    EXPECT_GE(similarity::WordTokens(*v).size(), 3u);
  }
  WorkloadSampler names(gen.names());
  for (int i = 0; i < 20; ++i) {
    auto v = names.SampleWithMinChars(3);
    ASSERT_TRUE(v.ok());
    EXPECT_GE(v->size(), 3u);
  }
}

TEST(WorkloadSamplerTest, ImpossibleConstraintFails) {
  WorkloadSampler sampler({"a", "b"});
  EXPECT_FALSE(sampler.SampleWithMinChars(100).ok());
}

// ---------- cluster cost model ----------

TEST(CostModelTest, ComputeIsMaxOverNodes) {
  hyracks::ExecStats stats;
  hyracks::OpStats op;
  op.name = "X";
  op.partition_seconds = {1.0, 1.0, 3.0, 1.0};  // node0: p0,p1; node1: p2,p3
  stats.ops.push_back(op);
  hyracks::ClusterTopology topo{2, 2};
  auto report = cluster::ComputeMakespan(stats, topo);
  EXPECT_DOUBLE_EQ(report.compute_seconds, 4.0);  // node1 = 3 + 1
  EXPECT_DOUBLE_EQ(report.network_seconds, 0.0);
}

TEST(CostModelTest, NetworkScalesWithBytes) {
  hyracks::ExecStats stats;
  hyracks::OpStats op;
  op.name = "EXCHANGE";
  op.partition_seconds = {0, 0, 0, 0};
  op.remote_bytes = 117ull * 1024 * 1024 * 2;  // 2 seconds at full bandwidth
  stats.ops.push_back(op);
  hyracks::ClusterTopology topo{2, 2};
  auto report = cluster::ComputeMakespan(stats, topo);
  EXPECT_GT(report.network_seconds, 0.9);  // spread over 2 nodes: ~1s + latency
  EXPECT_LT(report.network_seconds, 2.0);
}

TEST(CostModelTest, MoreNodesReduceNetworkTime) {
  hyracks::ExecStats stats;
  hyracks::OpStats op;
  op.partition_seconds.assign(16, 0.0);
  op.remote_bytes = 1ull << 30;
  stats.ops.push_back(op);
  auto few = cluster::ComputeMakespan(stats, {2, 8});
  auto many = cluster::ComputeMakespan(stats, {8, 2});
  EXPECT_GT(few.network_seconds, many.network_seconds);
}

TEST(CostModelTest, FormatIsReadable) {
  cluster::MakespanReport report{1.5, 0.25};
  std::string s = cluster::FormatMakespan(report);
  EXPECT_NE(s.find("1.75"), std::string::npos);
}

}  // namespace
}  // namespace simdb::datagen
