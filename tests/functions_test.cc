// Systematic coverage of the scalar function library (hyracks/functions.cc):
// every builtin's happy path, type errors, and MISSING/NULL behaviour.
#include <gtest/gtest.h>

#include "hyracks/expr.h"
#include "hyracks/functions.h"

namespace simdb::hyracks {
namespace {

using adm::Value;

Result<Value> Eval(const std::string& fn, std::vector<Value> args) {
  const FunctionDef* def = FunctionRegistry::Global().Find(fn);
  if (def == nullptr) return Status::NotFound("no function " + fn);
  return def->fn(args);
}

Value Str(const char* s) { return Value::String(s); }
Value I(int64_t v) { return Value::Int64(v); }
Value D(double v) { return Value::Double(v); }
Value B(bool v) { return Value::Boolean(v); }
Value Tokens(std::vector<const char*> items) {
  Value::Array a;
  for (const char* s : items) a.push_back(Str(s));
  return Value::MakeArray(std::move(a));
}

// ---------- logical ----------

TEST(FunctionsTest, AndOrShortSemantics) {
  EXPECT_TRUE((*Eval("and", {B(true), B(true)})).AsBoolean());
  EXPECT_FALSE((*Eval("and", {B(true), B(false)})).AsBoolean());
  EXPECT_TRUE((*Eval("or", {B(false), B(true)})).AsBoolean());
  EXPECT_FALSE((*Eval("or", {B(false), B(false)})).AsBoolean());
  EXPECT_TRUE((*Eval("and", {B(true), B(true), B(true)})).AsBoolean());
  EXPECT_FALSE(Eval("and", {B(true), I(1)}).ok());  // non-boolean
}

TEST(FunctionsTest, Not) {
  EXPECT_FALSE((*Eval("not", {B(true)})).AsBoolean());
  EXPECT_FALSE(Eval("not", {I(0)}).ok());
}

// ---------- comparisons ----------

TEST(FunctionsTest, ComparisonOperators) {
  EXPECT_TRUE((*Eval("eq", {I(3), I(3)})).AsBoolean());
  EXPECT_TRUE((*Eval("eq", {I(3), D(3.0)})).AsBoolean());  // numeric coercion
  EXPECT_TRUE((*Eval("neq", {I(3), I(4)})).AsBoolean());
  EXPECT_TRUE((*Eval("lt", {I(3), I(4)})).AsBoolean());
  EXPECT_TRUE((*Eval("le", {I(3), I(3)})).AsBoolean());
  EXPECT_TRUE((*Eval("gt", {Str("b"), Str("a")})).AsBoolean());
  EXPECT_TRUE((*Eval("ge", {Str("a"), Str("a")})).AsBoolean());
}

TEST(FunctionsTest, ComparisonsWithMissingNullAreFalse) {
  for (const char* cmp : {"eq", "neq", "lt", "le", "gt", "ge"}) {
    EXPECT_FALSE((*Eval(cmp, {Value::Missing(), I(1)})).AsBoolean()) << cmp;
    EXPECT_FALSE((*Eval(cmp, {I(1), Value::Null()})).AsBoolean()) << cmp;
  }
}

// ---------- arithmetic ----------

TEST(FunctionsTest, IntegerArithmeticStaysInt) {
  Value v = *Eval("add", {I(2), I(3)});
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 5);
  EXPECT_EQ((*Eval("sub", {I(2), I(3)})).AsInt64(), -1);
  EXPECT_EQ((*Eval("mul", {I(4), I(3)})).AsInt64(), 12);
}

TEST(FunctionsTest, MixedArithmeticWidens) {
  Value v = *Eval("add", {I(2), D(0.5)});
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDoubleExact(), 2.5);
}

TEST(FunctionsTest, DivisionAlwaysDoubleAndChecksZero) {
  EXPECT_DOUBLE_EQ((*Eval("div", {I(7), I(2)})).AsDoubleExact(), 3.5);
  EXPECT_FALSE(Eval("div", {I(1), I(0)}).ok());
}

TEST(FunctionsTest, ArithmeticTypeErrors) {
  EXPECT_FALSE(Eval("add", {Str("a"), I(1)}).ok());
}

// ---------- misc ----------

TEST(FunctionsTest, IsMissing) {
  EXPECT_TRUE((*Eval("is-missing", {Value::Missing()})).AsBoolean());
  EXPECT_FALSE((*Eval("is-missing", {Value::Null()})).AsBoolean());
}

TEST(FunctionsTest, IfThenElse) {
  EXPECT_EQ((*Eval("if-then-else", {B(true), I(1), I(2)})).AsInt64(), 1);
  EXPECT_EQ((*Eval("if-then-else", {B(false), I(1), I(2)})).AsInt64(), 2);
  EXPECT_FALSE(Eval("if-then-else", {I(1), I(1), I(2)}).ok());
}

TEST(FunctionsTest, LenOnStringsAndLists) {
  EXPECT_EQ((*Eval("len", {Str("abcd")})).AsInt64(), 4);
  EXPECT_EQ((*Eval("len", {Tokens({"a", "b"})})).AsInt64(), 2);
  EXPECT_FALSE(Eval("len", {I(1)}).ok());
}

TEST(FunctionsTest, GetField) {
  Value rec = Value::MakeObject({{"x", I(7)}});
  EXPECT_EQ((*Eval("get-field", {rec, Str("x")})).AsInt64(), 7);
  EXPECT_TRUE((*Eval("get-field", {rec, Str("y")})).is_missing());
  EXPECT_FALSE(Eval("get-field", {rec, I(1)}).ok());
}

// ---------- tokenizers ----------

TEST(FunctionsTest, WordTokensBuiltin) {
  Value v = *Eval("word-tokens", {Str("Great Product!")});
  ASSERT_EQ(v.AsList().size(), 2u);
  EXPECT_EQ(v.AsList()[0].AsString(), "great");
  // MISSING tokenizes to an empty list (records without the field are
  // simply not matched rather than failing the query).
  EXPECT_TRUE((*Eval("word-tokens", {Value::Missing()})).AsList().empty());
  EXPECT_FALSE(Eval("word-tokens", {I(3)}).ok());
}

TEST(FunctionsTest, GramTokensBuiltin) {
  Value v = *Eval("gram-tokens", {Str("abcd"), I(2)});
  EXPECT_EQ(v.AsList().size(), 3u);
  Value padded = *Eval("gram-tokens", {Str("ab"), I(3), B(true)});
  EXPECT_EQ(padded.AsList().size(), 4u);
  EXPECT_FALSE(Eval("gram-tokens", {Str("ab"), Str("x")}).ok());
}

TEST(FunctionsTest, SortList) {
  Value v = *Eval("sort-list", {Tokens({"c", "a", "b"})});
  EXPECT_EQ(v.AsList()[0].AsString(), "a");
  EXPECT_EQ(v.AsList()[2].AsString(), "c");
  // Mixed types sort by the cross-type order.
  Value mixed = *Eval("sort-list", {Value::MakeArray({Str("a"), I(5)})});
  EXPECT_TRUE(mixed.AsList()[0].is_int64());
  EXPECT_FALSE(Eval("sort-list", {I(1)}).ok());
}

TEST(FunctionsTest, DedupOccurrencesBuiltin) {
  Value v = *Eval("dedup-occurrences", {Tokens({"a", "a", "b"})});
  ASSERT_EQ(v.AsList().size(), 3u);
  EXPECT_EQ(v.AsList()[1].AsString(), "a#1");
}

// ---------- similarity ----------

TEST(FunctionsTest, EditDistanceBuiltins) {
  EXPECT_EQ((*Eval("edit-distance", {Str("james"), Str("jamie")})).AsInt64(),
            2);
  EXPECT_TRUE(
      (*Eval("edit-distance-check", {Str("james"), Str("jamie"), I(2)}))
          .AsBoolean());
  EXPECT_FALSE(
      (*Eval("edit-distance-check", {Str("james"), Str("jamie"), I(1)}))
          .AsBoolean());
  EXPECT_FALSE(Eval("edit-distance-check", {Str("a"), Str("b"), Str("x")})
                   .ok());
}

TEST(FunctionsTest, JaccardBuiltins) {
  Value a = Tokens({"good", "product"});
  Value b = Tokens({"product"});
  EXPECT_DOUBLE_EQ((*Eval("similarity-jaccard", {a, b})).AsDoubleExact(), 0.5);
  EXPECT_TRUE((*Eval("similarity-jaccard-check", {a, b, D(0.5)})).AsBoolean());
  EXPECT_FALSE((*Eval("similarity-jaccard-check", {a, b, D(0.6)})).AsBoolean());
}

TEST(FunctionsTest, JaccardOnIntegerLists) {
  // The three-stage join verifies on rank (int) lists.
  Value a = Value::MakeArray({I(1), I(2), I(3)});
  Value b = Value::MakeArray({I(2), I(3), I(4)});
  EXPECT_DOUBLE_EQ((*Eval("similarity-jaccard", {a, b})).AsDoubleExact(), 0.5);
}

TEST(FunctionsTest, DiceAndCosineBuiltins) {
  Value a = Tokens({"one", "two", "three"});
  Value b = Tokens({"one", "two", "six"});
  EXPECT_NEAR((*Eval("similarity-dice", {a, b})).AsDoubleExact(), 2.0 / 3, 1e-9);
  EXPECT_NEAR((*Eval("similarity-cosine", {a, b})).AsDoubleExact(), 2.0 / 3,
              1e-9);
}

TEST(FunctionsTest, ContainsBuiltin) {
  EXPECT_TRUE((*Eval("contains", {Str("KX750-A11"), Str("750")})).AsBoolean());
  EXPECT_FALSE((*Eval("contains", {Str("abc"), Str("z")})).AsBoolean());
  EXPECT_FALSE(Eval("contains", {Str("abc"), I(1)}).ok());
}

// ---------- prefix-filter helpers ----------

TEST(FunctionsTest, PrefixLenJaccardBuiltin) {
  EXPECT_EQ((*Eval("prefix-len-jaccard", {I(4), D(0.5)})).AsInt64(), 3);
  EXPECT_FALSE(Eval("prefix-len-jaccard", {Str("x"), D(0.5)}).ok());
}

TEST(FunctionsTest, SubsetCollectionBuiltin) {
  Value list = Tokens({"a", "b", "c", "d"});
  Value v = *Eval("subset-collection", {list, I(1), I(2)});
  ASSERT_EQ(v.AsList().size(), 2u);
  EXPECT_EQ(v.AsList()[0].AsString(), "b");
  // Out-of-range windows clamp instead of failing.
  EXPECT_EQ((*Eval("subset-collection", {list, I(3), I(10)})).AsList().size(),
            1u);
  EXPECT_TRUE(
      (*Eval("subset-collection", {list, I(-5), I(0)})).AsList().empty());
}

TEST(FunctionsTest, EditDistanceTOccurrenceBuiltin) {
  // |G("marla")| - k*n = 4 - 2 = 2 (paper's running example).
  EXPECT_EQ((*Eval("edit-distance-t-occurrence", {Str("marla"), I(2), I(1)}))
                .AsInt64(),
            2);
  EXPECT_EQ((*Eval("edit-distance-t-occurrence", {Str("marla"), I(2), I(3)}))
                .AsInt64(),
            -2);
}

// ---------- registry behaviour ----------

TEST(FunctionsTest, UnknownFunctionAndArityValidation) {
  EXPECT_EQ(FunctionRegistry::Global().Find("no-such-fn"), nullptr);
  EXPECT_FALSE(Call("len", {}).ok());                      // too few
  EXPECT_FALSE(Call("len", {Lit(I(1)), Lit(I(2))}).ok());  // too many
}

TEST(FunctionsTest, UserRegistrationAndOverride) {
  FunctionRegistry::Global().Register(
      {"test-triple", 1, 1, [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Int64(a[0].AsInt64() * 3);
       }});
  EXPECT_EQ((*Eval("test-triple", {I(4)})).AsInt64(), 12);
  FunctionRegistry::Global().Register(
      {"test-triple", 1, 1, [](const std::vector<Value>& a) -> Result<Value> {
         return Value::Int64(a[0].AsInt64() * 30);
       }});
  EXPECT_EQ((*Eval("test-triple", {I(4)})).AsInt64(), 120);
}

TEST(FunctionsTest, NamesListsBuiltins) {
  std::vector<std::string> names = FunctionRegistry::Global().Names();
  EXPECT_GT(names.size(), 25u);
}

}  // namespace
}  // namespace simdb::hyracks
